#include "common/failpoint.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/rng.h"

namespace agl::fail {
namespace {

constexpr uint64_t kDefaultSeed = 0x41474c4641494cULL;  // "AGLFAIL"
constexpr const char* kCrashPrefix = "injected crash at ";

struct CodeName {
  const char* name;
  StatusCode code;
};

// Names match StatusCodeName() so specs and logged statuses agree.
constexpr CodeName kCodeNames[] = {
    {"InvalidArgument", StatusCode::kInvalidArgument},
    {"NotFound", StatusCode::kNotFound},
    {"OutOfRange", StatusCode::kOutOfRange},
    {"AlreadyExists", StatusCode::kAlreadyExists},
    {"Corruption", StatusCode::kCorruption},
    {"IoError", StatusCode::kIoError},
    {"FailedPrecondition", StatusCode::kFailedPrecondition},
    {"ResourceExhausted", StatusCode::kResourceExhausted},
    {"Aborted", StatusCode::kAborted},
    {"Unavailable", StatusCode::kUnavailable},
    {"Unimplemented", StatusCode::kUnimplemented},
    {"Internal", StatusCode::kInternal},
};

bool ParseStatusCode(const std::string& name, StatusCode* out) {
  for (const CodeName& c : kCodeNames) {
    if (name == c.name) {
      *out = c.code;
      return true;
    }
  }
  return false;
}

agl::Status SpecError(const std::string& entry, const std::string& why) {
  return agl::Status::InvalidArgument("bad failpoint spec entry '" + entry +
                                      "': " + why);
}

bool ParseUint(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseProbability(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  if (v < 0.0 || v > 1.0) return false;
  *out = v;
  return true;
}

/// Parses one "site=mode..." entry. On success fills site+config (or seed
/// when the entry is "seed=N", signalled by *is_seed).
agl::Status ParseEntry(const std::string& entry, std::string* site,
                       SiteConfig* config, uint64_t* seed, bool* is_seed) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
    return SpecError(entry, "expected site=mode");
  }
  *site = entry.substr(0, eq);
  std::string rhs = entry.substr(eq + 1);
  if (*site == "seed") {
    if (!ParseUint(rhs, seed)) return SpecError(entry, "seed must be a uint");
    *is_seed = true;
    return agl::Status::OK();
  }
  *is_seed = false;

  // Split off the "@N" and "xM" suffixes (fixed order after the mode).
  SiteConfig out;
  const std::size_t at = rhs.find('@');
  std::string after_at;
  if (at != std::string::npos) {
    after_at = rhs.substr(at + 1);
    rhs = rhs.substr(0, at);
  }
  // 'x' only counts as the max-fires separator outside the mode word
  // itself (none of off/error/crash contain one) and after '(' is closed.
  std::string fires_str;
  if (!after_at.empty()) {
    const std::size_t x = after_at.find('x');
    if (x != std::string::npos) {
      fires_str = after_at.substr(x + 1);
      after_at = after_at.substr(0, x);
    }
  } else {
    const std::size_t close = rhs.find(')');
    const std::size_t x = rhs.find('x', close == std::string::npos
                                           ? 0
                                           : close);
    if (x != std::string::npos) {
      fires_str = rhs.substr(x + 1);
      rhs = rhs.substr(0, x);
    }
  }

  // Mode word, optionally followed by "(args)".
  std::string args;
  const std::size_t open = rhs.find('(');
  if (open != std::string::npos) {
    if (rhs.back() != ')') return SpecError(entry, "unbalanced '('");
    args = rhs.substr(open + 1, rhs.size() - open - 2);
    rhs = rhs.substr(0, open);
  }
  if (rhs == "off") {
    out.mode = Mode::kOff;
  } else if (rhs == "error") {
    out.mode = Mode::kError;
  } else if (rhs == "crash") {
    out.mode = Mode::kCrash;
  } else {
    return SpecError(entry, "unknown mode '" + rhs +
                                "' (expected off|error|crash)");
  }
  if (!args.empty()) {
    const std::size_t comma = args.find(',');
    std::string prob_str = args;
    if (comma != std::string::npos) {
      const std::string code_str = args.substr(0, comma);
      if (!ParseStatusCode(code_str, &out.code)) {
        return SpecError(entry, "unknown status code '" + code_str + "'");
      }
      prob_str = args.substr(comma + 1);
    }
    if (!ParseProbability(prob_str, &out.probability)) {
      return SpecError(entry,
                       "probability must be a real in [0,1], got '" +
                           prob_str + "'");
    }
  }
  if (at != std::string::npos) {
    uint64_t v = 0;
    if (!ParseUint(after_at, &v) || v == 0) {
      return SpecError(entry, "'@' needs a positive hit index");
    }
    out.first_hit = static_cast<int64_t>(v);
  }
  if (!fires_str.empty()) {
    uint64_t v = 0;
    if (!ParseUint(fires_str, &v) || v == 0) {
      return SpecError(entry, "'x' needs a positive fire count");
    }
    out.max_fires = static_cast<int64_t>(v);
  }
  *config = out;
  return agl::Status::OK();
}

/// Shared by ApplySpec/ValidateSpec: parse every entry, check sites, and
/// (when `registry` is non-null) apply.
agl::Status ParseSpec(const std::string& spec, FailpointRegistry* registry) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string entry = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (entry.empty()) continue;  // tolerate trailing / doubled ';'
    std::string site;
    SiteConfig config;
    uint64_t seed = 0;
    bool is_seed = false;
    AGL_RETURN_IF_ERROR(ParseEntry(entry, &site, &config, &seed, &is_seed));
    if (is_seed) {
      if (registry != nullptr) registry->SetSeed(seed);
      continue;
    }
    const std::vector<std::string>& known = KnownSites();
    if (std::find(known.begin(), known.end(), site) == known.end()) {
      std::string list;
      for (const std::string& s : known) {
        if (!list.empty()) list += ", ";
        list += s;
      }
      return agl::Status::InvalidArgument(
          "unknown failpoint site '" + site + "' (known sites: " + list +
          ")");
    }
    if (registry != nullptr) registry->Configure(site, config);
  }
  return agl::Status::OK();
}

}  // namespace

FailpointRegistry::FailpointRegistry() : seed_(kDefaultSeed) {
  const char* env = std::getenv("AGL_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    // A bad env spec must not silently disable injection someone asked
    // for: fail loudly. CLI front ends validate before this runs.
    agl::Status s = ParseSpec(env, this);
    AGL_CHECK(s.ok()) << "AGL_FAILPOINTS: " << s.ToString();
  }
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Configure(const std::string& site,
                                  const SiteConfig& config) {
  common::MutexLock lock(&mu_);
  auto it = sites_.find(site);
  const bool was_active =
      it != sites_.end() && it->second.config.mode != Mode::kOff;
  const bool now_active = config.mode != Mode::kOff;
  sites_[site] = SiteState{config, 0, 0};
  if (was_active != now_active) {
    active_sites_.fetch_add(now_active ? 1 : -1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::Disable(const std::string& site) {
  common::MutexLock lock(&mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  if (it->second.config.mode != Mode::kOff) {
    active_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
  sites_.erase(it);
}

void FailpointRegistry::ClearAll() {
  common::MutexLock lock(&mu_);
  sites_.clear();
  seed_ = kDefaultSeed;
  active_sites_.store(0, std::memory_order_relaxed);
}

void FailpointRegistry::SetSeed(uint64_t seed) {
  common::MutexLock lock(&mu_);
  seed_ = seed;
}

agl::Status FailpointRegistry::MaybeFail(const std::string& site) {
  if (active_sites_.load(std::memory_order_relaxed) == 0) {
    return agl::Status::OK();
  }
  common::MutexLock lock(&mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || it->second.config.mode == Mode::kOff) {
    return agl::Status::OK();
  }
  // The site's own hit counter is the default uid: deterministic per hit
  // index, though under concurrency which thread draws which index is
  // schedule-dependent. Callers needing full schedule independence use
  // the uid overload.
  SiteState& state = it->second;
  const uint64_t uid = static_cast<uint64_t>(state.hits);
  return FailLocked(&state, site, uid);
}

agl::Status FailpointRegistry::MaybeFail(const std::string& site,
                                         uint64_t uid) {
  if (active_sites_.load(std::memory_order_relaxed) == 0) {
    return agl::Status::OK();
  }
  common::MutexLock lock(&mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || it->second.config.mode == Mode::kOff) {
    return agl::Status::OK();
  }
  return FailLocked(&it->second, site, uid);
}

agl::Status FailpointRegistry::FailLocked(SiteState* state,
                                          const std::string& site,
                                          uint64_t uid) {
  const SiteConfig& config = state->config;
  state->hits++;
  const int64_t hit = state->hits;
  if (config.first_hit > 0 && hit < config.first_hit) {
    return agl::Status::OK();
  }
  if (config.max_fires >= 0 && state->fires >= config.max_fires) {
    return agl::Status::OK();
  }
  if (config.probability < 1.0) {
    Rng rng(DeriveSeed(DeriveSeed(seed_, Fnv1aHash(site)), uid));
    if (!rng.Bernoulli(config.probability)) return agl::Status::OK();
  }
  state->fires++;
  const std::string where = site + " (hit " + std::to_string(hit) + ")";
  if (config.mode == Mode::kCrash) {
    return agl::Status::Aborted(kCrashPrefix + where);
  }
  return agl::Status(config.code, "injected fault at " + where);
}

int64_t FailpointRegistry::HitCount(const std::string& site) const {
  common::MutexLock lock(&mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

int64_t FailpointRegistry::FireCount(const std::string& site) const {
  common::MutexLock lock(&mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

bool IsInjectedCrash(const agl::Status& status) {
  return status.code() == StatusCode::kAborted &&
         status.message().rfind(kCrashPrefix, 0) == 0;
}

const std::vector<std::string>& KnownSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "dfs.read",  "dfs.rename",   "dfs.write", "driver.spawn",
      "infer.spill", "mr.map",     "mr.reduce", "ps.pull",
      "ps.push",   "rpc.recv",     "rpc.send",  "trainer.step",
  };
  return *sites;
}

agl::Status ApplySpec(const std::string& spec) {
  return ParseSpec(spec, &FailpointRegistry::Global());
}

agl::Status ValidateSpec(const std::string& spec) {
  return ParseSpec(spec, nullptr);
}

}  // namespace agl::fail
