// Annotated locking vocabulary: thin wrappers over std::mutex /
// std::condition_variable that carry clang thread-safety capabilities
// (thread_annotations.h), so every locking site in the tree is visible to
// -Wthread-safety. The wrappers add no state and no overhead beyond the
// standard primitives they hold.
//
// Usage pattern (the only one the analysis models cleanly):
//
//   common::Mutex mu_;
//   int value_ GUARDED_BY(mu_);
//   common::CondVar cv_;
//
//   {
//     common::MutexLock lock(&mu_);
//     while (!Ready()) cv_.Wait(&mu_);  // explicit predicate loop
//     ++value_;
//   }
//   cv_.Signal();                       // notify after releasing the lock

#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace agl::common {

/// An exclusive capability ("mutex") wrapping std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex (the scoped capability the analysis tracks).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable used with a Mutex. The mutex is passed to Wait()
/// (abseil-style) so the analysis can match it against the caller's held
/// capability — a bound-at-construction mutex would be opaque to it.
/// Several CondVars may wait on one mutex (e.g. BoundedQueue's
/// not_full_/not_empty_ pair).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires it before returning.
  /// Callers wrap this in an explicit `while (!predicate)` loop inside the
  /// locked region (spurious wakeups are allowed through).
  void Wait(Mutex* mu) REQUIRES(mu) {
    // Adopt the already-held mutex for the duration of the wait, then
    // release the unique_lock's ownership claim without unlocking — the
    // caller's MutexLock still owns the mutex.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace agl::common
