#include "common/flags.h"

#include <charconv>
#include <cstdlib>
#include <sstream>

namespace agl {
namespace {

const char* TypeName(int type) {
  switch (type) {
    case 0:
      return "string";
    case 1:
      return "int";
    case 2:
      return "double";
    case 3:
      return "bool";
  }
  return "?";
}

}  // namespace

FlagParser& FlagParser::AddString(const std::string& name,
                                  std::string* target, std::string help) {
  flags_[name] = {Type::kString, target, std::move(help), *target};
  return *this;
}

FlagParser& FlagParser::AddInt(const std::string& name, int64_t* target,
                               std::string help) {
  flags_[name] = {Type::kInt, target, std::move(help),
                  std::to_string(*target)};
  return *this;
}

FlagParser& FlagParser::AddDouble(const std::string& name, double* target,
                                  std::string help) {
  flags_[name] = {Type::kDouble, target, std::move(help),
                  std::to_string(*target)};
  return *this;
}

FlagParser& FlagParser::AddBool(const std::string& name, bool* target,
                                std::string help) {
  flags_[name] = {Type::kBool, target, std::move(help),
                  *target ? "true" : "false"};
  return *this;
}

agl::Status FlagParser::SetValue(const std::string& name,
                                 const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return agl::Status::InvalidArgument("unknown flag: -" + name);
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return agl::Status::OK();
    case Type::kInt: {
      int64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), v);
      if (ec != std::errc() || ptr != value.data() + value.size()) {
        return agl::Status::InvalidArgument("flag -" + name +
                                            " expects an integer, got '" +
                                            value + "'");
      }
      *static_cast<int64_t*>(flag.target) = v;
      return agl::Status::OK();
    }
    case Type::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (value.empty() || end != value.c_str() + value.size()) {
        return agl::Status::InvalidArgument("flag -" + name +
                                            " expects a number, got '" +
                                            value + "'");
      }
      *static_cast<double*>(flag.target) = v;
      return agl::Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return agl::Status::InvalidArgument("flag -" + name +
                                            " expects true/false, got '" +
                                            value + "'");
      }
      return agl::Status::OK();
    }
  }
  return agl::Status::Internal("bad flag type");
}

agl::Status FlagParser::Parse(const std::vector<std::string>& args) {
  positional_.clear();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.size() < 2 || arg[0] != '-') {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(arg[1] == '-' ? 2 : 1);
    const std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      AGL_RETURN_IF_ERROR(SetValue(name.substr(0, eq), name.substr(eq + 1)));
      continue;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return agl::Status::InvalidArgument("unknown flag: " + arg);
    }
    if (it->second.type == Type::kBool &&
        (i + 1 >= args.size() || args[i + 1][0] == '-')) {
      *static_cast<bool*>(it->second.target) = true;  // bare boolean
      continue;
    }
    if (i + 1 >= args.size()) {
      return agl::Status::InvalidArgument("flag " + arg + " needs a value");
    }
    AGL_RETURN_IF_ERROR(SetValue(name, args[++i]));
  }
  return agl::Status::OK();
}

agl::Status FlagParser::Parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args);
}

std::string FlagParser::Help() const {
  std::ostringstream os;
  for (const auto& [name, flag] : flags_) {
    os << "  -" << name << " (" << TypeName(static_cast<int>(flag.type))
       << ")  " << flag.help << " [default: " << flag.default_value << "]\n";
  }
  return os.str();
}

}  // namespace agl
