// Child-process helpers for the driver subsystem: spawn a worker binary,
// wait for it, classify how it exited. The classification feeds the same
// retry layer the in-process failpoints exercise — a signal death (OOM
// kill, SIGKILL from the chaos harness, a crashed runtime) is transient
// (kUnavailable, retryable); a nonzero exit is a worker-reported failure
// whose real Status the worker left on shared storage.

#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

#include "common/status.h"

namespace agl::common {

/// How a child exited.
struct ExitStatus {
  bool signaled = false;
  /// Exit code when !signaled, terminating signal number when signaled.
  int value = 0;

  bool clean() const { return !signaled && value == 0; }
};

/// Spawns `argv` (argv[0] is the executable path; PATH is not searched)
/// with this process's environment plus `extra_env` ("KEY=VALUE" entries,
/// overriding inherited keys). Hits the "driver.spawn" failpoint first so
/// chaos schedules can starve the driver of workers.
agl::Result<pid_t> Spawn(const std::vector<std::string>& argv,
                         const std::vector<std::string>& extra_env = {});

/// Blocks until `pid` exits.
agl::Result<ExitStatus> Wait(pid_t pid);

/// Sends `sig` to `pid`; kNotFound when the process is already gone.
agl::Status Kill(pid_t pid, int sig);

/// True while `pid` names a live process (or an unreaped zombie).
bool IsAlive(pid_t pid);

/// Maps a child's ExitStatus onto the Status classification the retry
/// layer consumes: OK for a clean exit, retryable kUnavailable for a
/// signal death, kInternal ("look at the worker's reported status") for a
/// nonzero exit.
agl::Status ClassifyExit(const ExitStatus& exit, const std::string& what);

/// Path of the currently-running executable (/proc/self/exe), used to
/// re-exec workers of the same binary.
agl::Result<std::string> SelfExecutable();

}  // namespace agl::common
