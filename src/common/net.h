// Minimal loopback socket transport for the multi-process runtime: a
// listener bound to an ephemeral 127.0.0.1 port and a connection that
// moves length-prefixed frames (4-byte little-endian length + payload —
// the same fixed32 encoding io::BufferWriter uses). The parameter-server
// wire protocol (ps/wire.h) rides entirely on WriteFrame/ReadFrame.
//
// Fault injection: every frame write hits the "rpc.send" failpoint and
// every frame read hits "rpc.recv", so chaos schedules cover the
// transport the same way they cover storage and compute.

#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace agl::common {

/// Byte/frame counters of one connection (monotone, read after use).
struct SocketStats {
  int64_t frames_sent = 0;
  int64_t frames_received = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
};

/// One connected stream socket moving length-prefixed frames.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Writes one frame (length prefix + payload). kUnavailable when the
  /// peer is gone (EPIPE/ECONNRESET) — the retryable process-death class.
  agl::Status WriteFrame(const std::string& payload);

  /// Reads one frame. kUnavailable on clean EOF or a reset mid-frame,
  /// kCorruption on an insane length prefix.
  agl::Result<std::string> ReadFrame();

  void Close();

  const SocketStats& stats() const { return stats_; }

 private:
  int fd_ = -1;
  SocketStats stats_;
};

/// A listening socket on an ephemeral loopback port.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds 127.0.0.1:0 and listens; the chosen port is in port().
  static agl::Result<Listener> Loopback();

  bool valid() const { return fd_ >= 0; }
  int port() const { return port_; }

  /// Blocks for the next connection. kUnavailable once Close() ran
  /// (the accept loop's shutdown signal).
  agl::Result<Socket> Accept();

  /// Unblocks pending Accept calls; idempotent.
  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Connects to 127.0.0.1:`port`, retrying until `timeout_ms` — the server
/// process may still be binding when the client starts.
agl::Result<Socket> ConnectLoopback(int port, int timeout_ms = 10000);

}  // namespace agl::common
