#include "common/rng.h"

#include <algorithm>
#include <numeric>

namespace agl {

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  if (k >= n) return idx;
  // Partial Fisher-Yates: the first k slots become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = static_cast<std::size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n - 1)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

uint64_t Fnv1aHash(const std::string& bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t DeriveSeed(uint64_t parent, uint64_t stream) {
  uint64_t z = parent + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace agl
