// Minimal leveled logging and CHECK macros.
//
// The logger writes to stderr and is thread-safe at line granularity. CHECK
// macros express internal invariants: they abort with a message on failure
// and are always on (cheap compared to the numeric kernels they guard).

#pragma once

#include <sstream>
#include <string>

namespace agl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_ = nullptr;
  int line_ = 0;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

struct Voidify {
  // Lowest-precedence operator so `cond ? (void)0 : Voidify() & stream`
  // compiles for any streamed type.
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace agl

#define AGL_LOG(level)                                                       \
  ::agl::internal::LogMessage(::agl::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

#define AGL_CHECK(cond)                                         \
  (cond) ? (void)0                                              \
         : ::agl::internal::Voidify() &                         \
               ::agl::internal::FatalLogMessage(__FILE__, __LINE__).stream() \
                   << "Check failed: " #cond " "

#define AGL_CHECK_OP_(a, b, op) AGL_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define AGL_CHECK_EQ(a, b) AGL_CHECK_OP_(a, b, ==)
#define AGL_CHECK_NE(a, b) AGL_CHECK_OP_(a, b, !=)
#define AGL_CHECK_LT(a, b) AGL_CHECK_OP_(a, b, <)
#define AGL_CHECK_LE(a, b) AGL_CHECK_OP_(a, b, <=)
#define AGL_CHECK_GT(a, b) AGL_CHECK_OP_(a, b, >)
#define AGL_CHECK_GE(a, b) AGL_CHECK_OP_(a, b, >=)

#define AGL_CHECK_OK(expr)                            \
  do {                                                \
    ::agl::Status _agl_s = (expr);                    \
    AGL_CHECK(_agl_s.ok()) << _agl_s.ToString();      \
  } while (0)
