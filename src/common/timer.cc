#include "common/timer.h"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

namespace agl {

uint64_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long size = 0, resident = 0;
  int n = std::fscanf(f, "%lu %lu", &size, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<uint64_t>(resident) *
         static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
}

double ProcessCpuSeconds() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + 1e-6 * t.tv_usec;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

}  // namespace agl
