#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace agl {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = std::min(n, threads_.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  std::vector<std::future<void>> futs;
  futs.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futs.push_back(Submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool* pool =
      new ThreadPool(std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace agl
