#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace agl {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    common::MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.SignalAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      common::MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty() && chunk_queue_.empty()) {
        cv_.Wait(&mu_);
      }
      // Chunk tasks first: they are short-lived and a ParallelFor caller is
      // actively blocked on them.
      if (!chunk_queue_.empty()) {
        task = std::move(chunk_queue_.front().second);
        chunk_queue_.pop_front();
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else {
        return;  // shutdown with both queues drained
      }
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // The caller counts as a worker: it runs the first chunk inline and then
  // helps drain the queue while waiting. This keeps nested ParallelFor
  // calls from pool workers deadlock-free — previously a worker blocked on
  // futures that only the (exhausted) pool could run.
  const std::size_t workers = std::min(n, threads_.size() + 1);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunk = (n + workers - 1) / workers;
  // Chunks past the first are enqueued; the caller runs chunk 0 inline.
  const std::size_t submitted = (n + chunk - 1) / chunk - 1;

  // All completion state lives in this shared_ptr'd block (not in pool
  // members): the chunk that performs the final decrement may run on
  // another thread after this call has already returned and the pool has
  // been destroyed, so it must only touch memory the lambda keeps alive.
  struct Shared {
    std::atomic<std::size_t> remaining;
    common::Mutex mu;
    common::CondVar done_cv;
    std::exception_ptr eptr GUARDED_BY(mu);
  };
  auto shared = std::make_shared<Shared>();
  shared->remaining.store(submitted, std::memory_order_relaxed);

  auto run_chunk = [&fn, shared](std::size_t begin, std::size_t end) {
    try {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      common::MutexLock lock(&shared->mu);
      if (!shared->eptr) shared->eptr = std::current_exception();
    }
  };

  {
    common::MutexLock lock(&mu_);
    for (std::size_t w = 1; w <= submitted; ++w) {
      const std::size_t begin = w * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      chunk_queue_.emplace_back(shared.get(), [run_chunk, shared, begin,
                                               end] {
        run_chunk(begin, end);
        if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Final chunk: wake the owning caller. Lock/unlock orders this
          // decrement before the caller's predicate check so the wakeup
          // cannot be missed.
          { common::MutexLock lock(&shared->mu); }
          shared->done_cv.SignalAll();
        }
      });
    }
  }
  cv_.SignalAll();

  run_chunk(0, std::min(chunk, n));

  // Help-run our own still-queued chunks. Only chunks tagged with this
  // call are taken: running arbitrary Submit() tasks — or another call's
  // chunks — here could reenter locks this caller already holds. Nested
  // ParallelFor still makes progress because each nested caller drains its
  // own chunks the same way.
  for (;;) {
    std::function<void()> task;
    {
      common::MutexLock lock(&mu_);
      for (auto it = chunk_queue_.begin(); it != chunk_queue_.end(); ++it) {
        if (it->first == shared.get()) {
          task = std::move(it->second);
          chunk_queue_.erase(it);
          break;
        }
      }
    }
    if (!task) break;  // remaining chunks are running on other threads
    task();
  }

  std::exception_ptr eptr;
  {
    common::MutexLock lock(&shared->mu);
    while (shared->remaining.load(std::memory_order_acquire) != 0) {
      shared->done_cv.Wait(&shared->mu);
    }
    eptr = shared->eptr;
  }
  if (eptr) std::rethrow_exception(eptr);
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool* pool =
      new ThreadPool(std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace agl
