// Fixed-size worker thread pool used by the MapReduce engine, the parameter
// server, and the edge-partitioned aggregation kernels.

#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace agl {

/// A fixed pool of worker threads consuming a FIFO task queue.
///
/// Tasks are arbitrary `void()` callables. `Submit` returns a future that
/// becomes ready when the task finishes (exceptions propagate through the
/// future). The pool joins all workers on destruction after draining the
/// queue.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (minimum 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      common::MutexLock lock(&mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.Signal();
    return fut;
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  /// iterations finish. Iterations are distributed in contiguous chunks;
  /// the calling thread runs the first chunk itself and helps execute
  /// queued tasks while waiting, so nesting ParallelFor inside pool
  /// workers cannot deadlock. The first exception thrown by `fn` is
  /// rethrown on the calling thread after all chunks complete.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn)
      EXCLUDES(mu_);

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  common::Mutex mu_;
  common::CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  // ParallelFor chunk tasks, tagged with their owning call. Kept separate
  // from queue_ so a waiting caller can help-run its own chunks without
  // executing arbitrary Submit() tasks — or another call's chunks — on its
  // stack (which could reenter locks the caller holds).
  std::deque<std::pair<const void*, std::function<void()>>> chunk_queue_
      GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

/// Process-wide shared pool sized to the hardware concurrency. Use for
/// compute kernels; create dedicated pools for long-blocking work.
ThreadPool& GlobalThreadPool();

}  // namespace agl
