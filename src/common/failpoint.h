// Unified failpoint framework: a process-wide registry of named fault
// injection sites that replaces the three ad-hoc hooks the subsystems grew
// independently (the MapReduce fault_injection_rate, the trainer's
// fault_injector callback, and the infer cache's spill fault hook).
//
// A site is a string like "dfs.write" compiled into the code path it
// guards; `fail::MaybeFail("dfs.write")` is a no-op (one relaxed atomic
// load) until the site is armed. Arming happens in code (tests use
// ScopedFailpoint) or through the AGL_FAILPOINTS environment variable,
// whose spec grammar is:
//
//   spec   := entry (';' entry)*
//   entry  := 'seed' '=' uint
//           | site '=' mode ['(' [code ','] probability ')']
//                           ['@' first_hit] ['x' max_fires]
//   mode   := 'off' | 'error' | 'crash'
//   code   := a StatusCode name ("IoError", "Unavailable", ...)
//
// Examples:
//   AGL_FAILPOINTS="mr.map=error(0.3)"            30% of map attempts fail
//   AGL_FAILPOINTS="dfs.write=error(IoError,0.1)" ... with code IoError
//   AGL_FAILPOINTS="trainer.step=crash@7x1"       crash on exactly hit 7
//   AGL_FAILPOINTS="dfs.rename=crash@2;seed=9"    crash from hit 2 on
//
// Modes: `error` makes the site return its configured Status (default
// kAborted) — the transient-failure model the retry layers classify and
// re-run. `crash` returns a status that IsInjectedCrash() recognizes; the
// layers treat it like a process death: no retry, no cleanup, scratch state
// left exactly as a kill -9 would leave it. Recovery paths (stale-scratch
// sweeps, manifest validation, checkpoint resume) are tested against it.
//
// Determinism: every decision is a pure function of (registry seed, site
// name, hit uid). The uid defaults to the site's hit counter; callers on
// concurrency-sensitive paths pass a stable uid (e.g. the MR task uid) so
// injection does not depend on thread scheduling.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace agl::fail {

/// Injection behaviour of one armed site.
enum class Mode {
  kOff,    // site disabled
  kError,  // return the configured Status (transient-failure model)
  kCrash,  // return an injected-crash Status (process-death model)
};

/// Full configuration of one site.
struct SiteConfig {
  Mode mode = Mode::kOff;
  /// Status code returned in kError mode (kCrash always uses kAborted).
  StatusCode code = StatusCode::kAborted;
  /// Chance that an eligible hit fires (deterministic given seed + uid).
  double probability = 1.0;
  /// Hits before this 1-based index never fire (0 or 1 = no gating):
  /// "@N" arms the site from its Nth hit on.
  int64_t first_hit = 0;
  /// Stop firing after this many fires (-1 = unlimited): "xM".
  int64_t max_fires = -1;
};

/// Process-wide site registry. Thread-safe; a process has exactly one
/// (Global()), constructed on first use from AGL_FAILPOINTS when set.
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  /// Arms (or, with Mode::kOff, disarms) `site` and resets its counters.
  void Configure(const std::string& site, const SiteConfig& config)
      EXCLUDES(mu_);
  void Disable(const std::string& site) EXCLUDES(mu_);
  /// Disarms every site and resets the seed (test isolation).
  void ClearAll() EXCLUDES(mu_);
  /// Seeds the deterministic per-hit draws ("seed=N" in a spec).
  void SetSeed(uint64_t seed) EXCLUDES(mu_);

  /// One hit on `site` with the site's hit counter as uid.
  agl::Status MaybeFail(const std::string& site) EXCLUDES(mu_);
  /// One hit with a caller-stable uid (schedule-independent injection).
  agl::Status MaybeFail(const std::string& site, uint64_t uid) EXCLUDES(mu_);

  /// Total hits / fires observed on `site` since it was configured.
  int64_t HitCount(const std::string& site) const EXCLUDES(mu_);
  int64_t FireCount(const std::string& site) const EXCLUDES(mu_);

 private:
  FailpointRegistry();

  struct SiteState {
    SiteConfig config;
    int64_t hits = 0;
    int64_t fires = 0;
  };

  /// Accounts one hit on an armed site and decides whether it fires.
  agl::Status FailLocked(SiteState* state, const std::string& site,
                         uint64_t uid) REQUIRES(mu_);

  // Number of sites with mode != kOff; lets MaybeFail on the (ubiquitous)
  // disabled path return after one relaxed load, without the mutex.
  std::atomic<int> active_sites_{0};
  mutable common::Mutex mu_;
  std::unordered_map<std::string, SiteState> sites_ GUARDED_BY(mu_);
  uint64_t seed_ GUARDED_BY(mu_);
};

/// Hit `site`; returns non-OK when the site is armed and fires.
inline agl::Status MaybeFail(const std::string& site) {
  return FailpointRegistry::Global().MaybeFail(site);
}
inline agl::Status MaybeFail(const std::string& site, uint64_t uid) {
  return FailpointRegistry::Global().MaybeFail(site, uid);
}

/// True iff `status` came from a kCrash-mode failpoint. Retry layers must
/// propagate these unretried (the "process" is dead); cleanup paths must
/// leave scratch state behind exactly as a real crash would.
bool IsInjectedCrash(const agl::Status& status);

/// The sites compiled into this binary (sorted). ValidateSpec checks
/// against this list so a CLI typo names the bad site up front.
const std::vector<std::string>& KnownSites();

/// Parses `spec` (grammar above) and applies it to the global registry.
agl::Status ApplySpec(const std::string& spec);

/// Parses `spec` without applying it; kInvalidArgument names the first
/// malformed entry or unknown site.
agl::Status ValidateSpec(const std::string& spec);

/// RAII site configuration for tests: arms at construction, disarms (and
/// clears counters) at destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, const SiteConfig& config)
      : site_(std::move(site)) {
    FailpointRegistry::Global().Configure(site_, config);
  }
  ~ScopedFailpoint() { FailpointRegistry::Global().Disable(site_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

/// Shorthands for the two common test shapes.
inline SiteConfig ErrorConfig(double probability,
                              StatusCode code = StatusCode::kAborted) {
  SiteConfig c;
  c.mode = Mode::kError;
  c.code = code;
  c.probability = probability;
  return c;
}
inline SiteConfig CrashOnHit(int64_t hit) {
  SiteConfig c;
  c.mode = Mode::kCrash;
  c.first_hit = hit;
  c.max_fires = 1;
  return c;
}

}  // namespace agl::fail
