// Bounded multi-producer/multi-consumer queue — the backbone of the
// trainer's staged pipeline (reader -> compute -> push/pull, §3.3.2).
//
// The capacity bound is what keeps pipeline memory O(depth x batch): a
// fast producer blocks instead of buffering an unbounded backlog. Two
// distinct shutdown signals keep teardown deadlock-free:
//   * Close()  — normal end-of-stream: producers are done; consumers
//     drain the remaining items and then see end-of-queue;
//   * Cancel() — error teardown: pending items are dropped and every
//     blocked or future Push/Pop returns immediately, so stage threads
//     can always be joined no matter where the failure happened.

#pragma once

#include <cstddef>
#include <deque>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace agl {

template <typename T>
class BoundedQueue {
 public:
  /// Creates a queue holding at most `capacity` items (minimum 1).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `value`) when
  /// the queue was closed or cancelled.
  bool Push(T value) EXCLUDES(mu_) {
    {
      common::MutexLock lock(&mu_);
      while (items_.size() >= capacity_ && !closed_ && !cancelled_) {
        not_full_.Wait(&mu_);
      }
      if (closed_ || cancelled_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.Signal();
    return true;
  }

  /// Blocks while the queue is empty and still open. Returns false when the
  /// queue is cancelled, or closed and fully drained.
  bool Pop(T* out) EXCLUDES(mu_) {
    {
      common::MutexLock lock(&mu_);
      while (items_.empty() && !closed_ && !cancelled_) {
        not_empty_.Wait(&mu_);
      }
      if (cancelled_ || items_.empty()) return false;
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.Signal();
    return true;
  }

  enum class TryPopResult {
    kItem,   // *out was filled
    kEmpty,  // nothing queued right now, but producers may still push
    kDone,   // closed-and-drained or cancelled: nothing will ever arrive
  };

  /// Non-blocking Pop; lets a consumer distinguish "not yet" from "never"
  /// (e.g. the trainer's compute stage peeking whether the batch it just
  /// processed was the epoch's last).
  TryPopResult TryPop(T* out) EXCLUDES(mu_) {
    {
      common::MutexLock lock(&mu_);
      if (cancelled_) return TryPopResult::kDone;
      if (items_.empty()) {
        return closed_ ? TryPopResult::kDone : TryPopResult::kEmpty;
      }
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.Signal();
    return TryPopResult::kItem;
  }

  /// End-of-stream: no further pushes succeed; queued items remain poppable.
  void Close() EXCLUDES(mu_) {
    {
      common::MutexLock lock(&mu_);
      closed_ = true;
    }
    not_full_.SignalAll();
    not_empty_.SignalAll();
  }

  /// Error teardown: drops queued items and releases all waiters.
  void Cancel() EXCLUDES(mu_) {
    {
      common::MutexLock lock(&mu_);
      cancelled_ = true;
      items_.clear();
    }
    not_full_.SignalAll();
    not_empty_.SignalAll();
  }

  bool cancelled() const EXCLUDES(mu_) {
    common::MutexLock lock(&mu_);
    return cancelled_;
  }

  std::size_t size() const EXCLUDES(mu_) {
    common::MutexLock lock(&mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable common::Mutex mu_;
  common::CondVar not_full_;
  common::CondVar not_empty_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
  bool cancelled_ GUARDED_BY(mu_) = false;
};

}  // namespace agl
