// Bounded multi-producer/multi-consumer queue — the backbone of the
// trainer's staged pipeline (reader -> compute -> push/pull, §3.3.2).
//
// The capacity bound is what keeps pipeline memory O(depth x batch): a
// fast producer blocks instead of buffering an unbounded backlog. Two
// distinct shutdown signals keep teardown deadlock-free:
//   * Close()  — normal end-of-stream: producers are done; consumers
//     drain the remaining items and then see end-of-queue;
//   * Cancel() — error teardown: pending items are dropped and every
//     blocked or future Push/Pop returns immediately, so stage threads
//     can always be joined no matter where the failure happened.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace agl {

template <typename T>
class BoundedQueue {
 public:
  /// Creates a queue holding at most `capacity` items (minimum 1).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `value`) when
  /// the queue was closed or cancelled.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return items_.size() < capacity_ || closed_ || cancelled_;
    });
    if (closed_ || cancelled_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty and still open. Returns false when the
  /// queue is cancelled, or closed and fully drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] {
      return !items_.empty() || closed_ || cancelled_;
    });
    if (cancelled_ || items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  enum class TryPopResult {
    kItem,   // *out was filled
    kEmpty,  // nothing queued right now, but producers may still push
    kDone,   // closed-and-drained or cancelled: nothing will ever arrive
  };

  /// Non-blocking Pop; lets a consumer distinguish "not yet" from "never"
  /// (e.g. the trainer's compute stage peeking whether the batch it just
  /// processed was the epoch's last).
  TryPopResult TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (cancelled_) return TryPopResult::kDone;
    if (items_.empty()) {
      return closed_ ? TryPopResult::kDone : TryPopResult::kEmpty;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return TryPopResult::kItem;
  }

  /// End-of-stream: no further pushes succeed; queued items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Error teardown: drops queued items and releases all waiters.
  void Cancel() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled_ = true;
      items_.clear();
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool cancelled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cancelled_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  bool cancelled_ = false;
};

}  // namespace agl
