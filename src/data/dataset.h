// Synthetic datasets with the shapes and metric protocols of the paper's
// three benchmarks (Table 2). The real Cora/PPI files and the proprietary
// Alipay User-User Graph are not available offline, so each generator
// plants learnable structure (feature/label homophily, neighborhood-
// dependent labels) with the same dimensionalities — see DESIGN.md for the
// substitution argument.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "flat/tables.h"
#include "graph/graph.h"
#include "subgraph/graph_feature.h"

namespace agl::data {

using flat::EdgeRecord;
using flat::NodeId;
using flat::NodeRecord;

/// A generated dataset: raw node/edge tables (GraphFlat's input format)
/// plus the target-id splits.
struct Dataset {
  std::string name;
  std::vector<NodeRecord> nodes;
  std::vector<EdgeRecord> edges;
  std::vector<NodeId> train_ids;
  std::vector<NodeId> val_ids;
  std::vector<NodeId> test_ids;
  int64_t feature_dim = 0;
  int64_t num_classes = 0;
  bool multilabel = false;

  int64_t num_nodes() const { return static_cast<int64_t>(nodes.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(edges.size()); }
};

/// Builds an in-memory graph::Graph from the dataset tables (reference
/// paths and the full-graph baseline).
agl::Result<graph::Graph> BuildGraph(const Dataset& dataset);

/// Splits GraphFeatures by target id into (train, val, test) according to
/// the dataset's id sets. Features for ids in none of the sets are dropped.
struct FeatureSplits {
  std::vector<subgraph::GraphFeature> train;
  std::vector<subgraph::GraphFeature> val;
  std::vector<subgraph::GraphFeature> test;
};
FeatureSplits SplitFeatures(std::vector<subgraph::GraphFeature> features,
                            const Dataset& dataset);

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

struct CoraLikeOptions {
  int64_t num_nodes = 2708;
  int64_t feature_dim = 1433;
  int64_t num_classes = 7;
  /// Citations per node (each undirected -> two directed edges).
  int64_t avg_degree = 2;
  /// Probability a citation stays inside the node's class.
  double homophily = 0.85;
  int64_t train_per_class = 20;  // 140 total
  int64_t val_size = 500;
  int64_t test_size = 1000;
  uint64_t seed = 41;
};

/// Citation-network analogue: class-correlated sparse bag-of-words
/// features, homophilous preferential attachment. Metric: accuracy.
Dataset MakeCoraLike(const CoraLikeOptions& options = {});

struct PpiLikeOptions {
  int64_t num_graphs = 24;
  int64_t nodes_per_graph = 300;  // paper: ~2373; scaled for CI budgets
  int64_t feature_dim = 50;
  int64_t num_labels = 121;
  int64_t avg_degree = 14;
  int64_t train_graphs = 20;
  int64_t val_graphs = 2;  // remaining 2 are test
  uint64_t seed = 43;
};

/// Protein-interaction analogue: 24 disjoint graphs, multi-label targets
/// produced by a teacher over neighborhood-averaged features (so labels
/// genuinely depend on graph structure). Metric: micro-F1.
Dataset MakePpiLike(const PpiLikeOptions& options = {});

struct UugLikeOptions {
  int64_t num_nodes = 20000;
  int64_t feature_dim = 64;  // paper: 656; scaled
  /// Preferential-attachment edges per new node (hubs emerge naturally).
  int64_t attach_edges = 5;
  /// Two latent communities drive the binary label. The feature signal is
  /// deliberately weak relative to this noise so that graph smoothing (the
  /// GNN) genuinely helps over a feature-only model.
  double community_feature_noise = 2.0;
  double cross_community_edge_rate = 0.15;
  int64_t train_size = 4000;
  int64_t val_size = 1000;
  int64_t test_size = 2000;
  uint64_t seed = 47;
};

/// Social-graph analogue of the Alipay User-User Graph: power-law degrees
/// (exercises GraphFlat's hub re-indexing + sampling), binary labels from
/// community structure. Metric: AUC.
Dataset MakeUugLike(const UugLikeOptions& options = {});

}  // namespace agl::data
