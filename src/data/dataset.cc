#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/rng.h"

namespace agl::data {

agl::Result<graph::Graph> BuildGraph(const Dataset& dataset) {
  const int64_t edge_dim =
      dataset.edges.empty()
          ? 0
          : static_cast<int64_t>(dataset.edges[0].features.size());
  graph::GraphBuilder builder(dataset.feature_dim, edge_dim);
  for (const NodeRecord& n : dataset.nodes) {
    if (n.label >= 0) {
      AGL_RETURN_IF_ERROR(builder.AddNode(n.id, n.features, n.label));
    } else {
      AGL_RETURN_IF_ERROR(builder.AddNode(n.id, n.features));
    }
  }
  for (const NodeRecord& n : dataset.nodes) {
    if (!n.multilabel.empty()) {
      AGL_RETURN_IF_ERROR(builder.SetMultilabel(n.id, n.multilabel));
    }
  }
  for (const EdgeRecord& e : dataset.edges) {
    builder.AddEdge(e.src, e.dst, e.weight, e.features);
  }
  return builder.Build();
}

FeatureSplits SplitFeatures(std::vector<subgraph::GraphFeature> features,
                            const Dataset& dataset) {
  std::unordered_set<NodeId> train(dataset.train_ids.begin(),
                                   dataset.train_ids.end());
  std::unordered_set<NodeId> val(dataset.val_ids.begin(),
                                 dataset.val_ids.end());
  std::unordered_set<NodeId> test(dataset.test_ids.begin(),
                                  dataset.test_ids.end());
  FeatureSplits splits;
  for (subgraph::GraphFeature& gf : features) {
    if (train.count(gf.target_id) > 0) {
      splits.train.push_back(std::move(gf));
    } else if (val.count(gf.target_id) > 0) {
      splits.val.push_back(std::move(gf));
    } else if (test.count(gf.target_id) > 0) {
      splits.test.push_back(std::move(gf));
    }
  }
  return splits;
}

Dataset MakeCoraLike(const CoraLikeOptions& options) {
  Rng rng(options.seed);
  Dataset ds;
  ds.name = "cora-like";
  ds.feature_dim = options.feature_dim;
  ds.num_classes = options.num_classes;

  // Per-class "topic words": each class owns a block of the vocabulary it
  // samples from preferentially — sparse binary bag-of-words features.
  const int64_t words_per_class = options.feature_dim / options.num_classes;
  ds.nodes.reserve(options.num_nodes);
  std::vector<int64_t> label_of(options.num_nodes);
  for (int64_t i = 0; i < options.num_nodes; ++i) {
    const int64_t cls = rng.UniformInt(0, options.num_classes - 1);
    label_of[i] = cls;
    std::vector<float> feat(options.feature_dim, 0.f);
    // ~20 active words, 70% drawn from the class block.
    for (int w = 0; w < 20; ++w) {
      int64_t word;
      if (rng.Bernoulli(0.7)) {
        word = cls * words_per_class +
               rng.UniformInt(0, words_per_class - 1);
      } else {
        word = rng.UniformInt(0, options.feature_dim - 1);
      }
      feat[word] = 1.f;
    }
    ds.nodes.push_back(NodeRecord{static_cast<NodeId>(i), std::move(feat),
                                  cls, {}});
  }

  // Homophilous citations: node i cites `avg_degree` earlier nodes, mostly
  // in-class. Undirected semantics -> two directed edges. Duplicate pairs
  // are skipped: edge identity is the endpoint pair everywhere downstream.
  std::vector<std::vector<int64_t>> by_class(options.num_classes);
  std::unordered_set<uint64_t> seen;
  for (int64_t i = 0; i < options.num_nodes; ++i) {
    const int64_t cls = label_of[i];
    for (int64_t d = 0; d < options.avg_degree && i > 0; ++d) {
      int64_t j;
      if (rng.Bernoulli(options.homophily) && !by_class[cls].empty()) {
        j = by_class[cls][rng.UniformInt(
            0, static_cast<int64_t>(by_class[cls].size()) - 1)];
      } else {
        j = rng.UniformInt(0, i - 1);
      }
      if (j == i) continue;
      const uint64_t key = (static_cast<uint64_t>(i) << 32) |
                           static_cast<uint64_t>(j);
      if (!seen.insert(key).second) continue;
      ds.edges.push_back({static_cast<NodeId>(i), static_cast<NodeId>(j), 1.f, {}});
      ds.edges.push_back({static_cast<NodeId>(j), static_cast<NodeId>(i), 1.f, {}});
    }
    by_class[cls].push_back(i);
  }

  // Splits: train_per_class per class, then val/test from the remainder.
  std::vector<NodeId> pool;
  std::vector<int64_t> taken_per_class(options.num_classes, 0);
  std::vector<std::size_t> order(options.num_nodes);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  for (std::size_t idx : order) {
    const int64_t cls = label_of[idx];
    if (taken_per_class[cls] < options.train_per_class) {
      ds.train_ids.push_back(static_cast<NodeId>(idx));
      taken_per_class[cls]++;
    } else {
      pool.push_back(static_cast<NodeId>(idx));
    }
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (static_cast<int64_t>(ds.val_ids.size()) < options.val_size) {
      ds.val_ids.push_back(pool[i]);
    } else if (static_cast<int64_t>(ds.test_ids.size()) < options.test_size) {
      ds.test_ids.push_back(pool[i]);
    }
  }
  return ds;
}

Dataset MakePpiLike(const PpiLikeOptions& options) {
  Rng rng(options.seed);
  Dataset ds;
  ds.name = "ppi-like";
  ds.feature_dim = options.feature_dim;
  ds.num_classes = options.num_labels;
  ds.multilabel = true;

  // A shared teacher: label j fires when w_j . (x_v + mean_u x_u) > 0 —
  // neighborhood-dependent, so graph structure genuinely matters.
  std::vector<std::vector<float>> teacher(options.num_labels);
  for (auto& w : teacher) {
    w.resize(options.feature_dim);
    for (float& v : w) v = static_cast<float>(rng.Normal(0, 1));
  }

  for (int64_t g = 0; g < options.num_graphs; ++g) {
    const NodeId base = static_cast<NodeId>(g * options.nodes_per_graph);
    // Features: per-graph Gaussian blobs (proteins of similar function).
    std::vector<std::vector<float>> feats(options.nodes_per_graph);
    for (int64_t i = 0; i < options.nodes_per_graph; ++i) {
      feats[i].resize(options.feature_dim);
      for (float& v : feats[i]) v = static_cast<float>(rng.Normal(0, 1));
    }
    // Edges: random regular-ish, avg degree ~ options.avg_degree
    // (undirected -> both directions).
    std::vector<std::vector<int64_t>> adj(options.nodes_per_graph);
    std::unordered_set<uint64_t> seen;
    const int64_t num_undirected =
        options.nodes_per_graph * options.avg_degree / 2;
    for (int64_t e = 0; e < num_undirected; ++e) {
      const int64_t a = rng.UniformInt(0, options.nodes_per_graph - 1);
      const int64_t b = rng.UniformInt(0, options.nodes_per_graph - 1);
      if (a == b) continue;
      const uint64_t key = a < b
                               ? (static_cast<uint64_t>(a) << 32) |
                                     static_cast<uint64_t>(b)
                               : (static_cast<uint64_t>(b) << 32) |
                                     static_cast<uint64_t>(a);
      if (!seen.insert(key).second) continue;
      adj[a].push_back(b);
      adj[b].push_back(a);
      ds.edges.push_back({base + static_cast<NodeId>(a),
                          base + static_cast<NodeId>(b), 1.f, {}});
      ds.edges.push_back({base + static_cast<NodeId>(b),
                          base + static_cast<NodeId>(a), 1.f, {}});
    }
    // Labels from the teacher over neighborhood-averaged features.
    for (int64_t i = 0; i < options.nodes_per_graph; ++i) {
      std::vector<float> agg = feats[i];
      if (!adj[i].empty()) {
        std::vector<float> mean(options.feature_dim, 0.f);
        for (int64_t u : adj[i]) {
          for (int64_t d = 0; d < options.feature_dim; ++d) {
            mean[d] += feats[u][d];
          }
        }
        for (int64_t d = 0; d < options.feature_dim; ++d) {
          agg[d] += mean[d] / static_cast<float>(adj[i].size());
        }
      }
      std::vector<float> y(options.num_labels, 0.f);
      for (int64_t j = 0; j < options.num_labels; ++j) {
        float dot = 0.f;
        for (int64_t d = 0; d < options.feature_dim; ++d) {
          dot += teacher[j][d] * agg[d];
        }
        y[j] = dot > 0.f ? 1.f : 0.f;
      }
      NodeRecord node;
      node.id = base + static_cast<NodeId>(i);
      node.features = feats[i];
      node.label = -1;
      node.multilabel = std::move(y);
      const NodeId id = node.id;
      ds.nodes.push_back(std::move(node));
      if (g < options.train_graphs) {
        ds.train_ids.push_back(id);
      } else if (g < options.train_graphs + options.val_graphs) {
        ds.val_ids.push_back(id);
      } else {
        ds.test_ids.push_back(id);
      }
    }
  }
  return ds;
}

Dataset MakeUugLike(const UugLikeOptions& options) {
  Rng rng(options.seed);
  Dataset ds;
  ds.name = "uug-like";
  ds.feature_dim = options.feature_dim;
  ds.num_classes = 2;

  // Community assignment drives the label; features are a noisy community
  // signature so the task is learnable but not trivial (graph smoothing
  // helps, which is why GNNs beat feature-only models here).
  std::vector<int> community(options.num_nodes);
  ds.nodes.reserve(options.num_nodes);
  for (int64_t i = 0; i < options.num_nodes; ++i) {
    community[i] = rng.Bernoulli(0.5) ? 1 : 0;
    std::vector<float> feat(options.feature_dim);
    const float center = community[i] == 1 ? 0.5f : -0.5f;
    for (float& v : feat) {
      v = static_cast<float>(
          rng.Normal(center, options.community_feature_noise));
    }
    ds.nodes.push_back(NodeRecord{static_cast<NodeId>(i), std::move(feat),
                                  community[i], {}});
  }

  // Preferential attachment (power-law hubs) kept per community so the
  // graph stays assortative: new node i attaches mostly inside its own
  // community, proportionally to degree; a small rate of cross-community
  // links keeps the task non-trivial. Duplicate pairs are skipped.
  std::vector<std::vector<int64_t>> repeated(2);  // per-community degree bag
  std::unordered_set<uint64_t> seen;
  for (int64_t i = 0; i < options.num_nodes; ++i) {
    const int64_t attach = std::min<int64_t>(i, options.attach_edges);
    for (int64_t e = 0; e < attach; ++e) {
      const bool cross = rng.Bernoulli(options.cross_community_edge_rate);
      const int com = cross ? 1 - community[i] : community[i];
      int64_t j = -1;
      if (!repeated[com].empty() && rng.Bernoulli(0.85)) {
        // Preferential: sample an endpoint of an existing edge.
        j = repeated[com][rng.UniformInt(
            0, static_cast<int64_t>(repeated[com].size()) - 1)];
      } else {
        // Uniform fallback among earlier nodes of that community.
        for (int tries = 0; tries < 8; ++tries) {
          const int64_t cand = rng.UniformInt(0, i - 1);
          if (community[cand] == com) {
            j = cand;
            break;
          }
        }
      }
      if (j < 0 || j == i) continue;
      const uint64_t key = (static_cast<uint64_t>(i) << 32) |
                           static_cast<uint64_t>(j);
      if (!seen.insert(key).second) continue;
      ds.edges.push_back({static_cast<NodeId>(i), static_cast<NodeId>(j), 1.f, {}});
      ds.edges.push_back({static_cast<NodeId>(j), static_cast<NodeId>(i), 1.f, {}});
      repeated[community[i]].push_back(i);
      repeated[community[j]].push_back(j);
    }
  }

  // Splits.
  std::vector<std::size_t> order(options.num_nodes);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const NodeId id = static_cast<NodeId>(order[i]);
    if (static_cast<int64_t>(ds.train_ids.size()) < options.train_size) {
      ds.train_ids.push_back(id);
    } else if (static_cast<int64_t>(ds.val_ids.size()) < options.val_size) {
      ds.val_ids.push_back(id);
    } else if (static_cast<int64_t>(ds.test_ids.size()) < options.test_size) {
      ds.test_ids.push_back(id);
    }
  }
  return ds;
}

}  // namespace agl::data
