#include "mr/mapreduce.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace agl::mr {
namespace {

/// Per-phase retry accounting, merged into JobStats at phase end.
struct RetryCounters {
  std::atomic<int64_t> failed_attempts{0};
  std::atomic<int64_t> task_attempts{0};
  std::atomic<int64_t> backoff_us{0};
};

/// Runs `task()` with classified retry: transient errors
/// (IsRetryableError) are re-run with capped exponential backoff and
/// deterministic seeded jitter; permanent errors and injected crashes
/// surface immediately. `site` is the failpoint hit before each attempt
/// ("mr.map"/"mr.reduce"); `task_uid` decorrelates injection and jitter
/// across tasks and rounds.
agl::Status RunWithRetry(const JobConfig& config, const char* site,
                         uint64_t task_uid, RetryCounters* counters,
                         const std::function<agl::Status()>& task) {
  Stopwatch deadline_watch;
  Rng jitter_rng(DeriveSeed(config.seed, task_uid ^ 0x9e3779b97f4a7c15ULL));
  agl::Status last;
  for (int attempt = 0; attempt < config.max_task_attempts; ++attempt) {
    counters->task_attempts.fetch_add(1, std::memory_order_relaxed);
    last = fail::MaybeFail(site,
                           task_uid * 131 + static_cast<uint64_t>(attempt));
    if (last.ok()) last = task();
    if (last.ok()) return last;
    // An injected crash models process death: it must reach the caller
    // unretried, whether it fired here or in a lower layer inside task().
    if (fail::IsInjectedCrash(last)) return last;
    counters->failed_attempts.fetch_add(1, std::memory_order_relaxed);
    if (!agl::IsRetryableError(last)) {
      return last;  // permanent: retrying cannot help
    }
    if (attempt + 1 >= config.max_task_attempts) break;
    double backoff_ms =
        std::min(config.backoff_max_ms,
                 config.backoff_initial_ms * std::pow(2.0, attempt));
    backoff_ms *= 0.5 + 0.5 * jitter_rng.Uniform();
    if (config.retry_deadline_ms > 0.0 &&
        deadline_watch.Seconds() * 1000.0 + backoff_ms >
            config.retry_deadline_ms) {
      return agl::Status::Aborted(
          "task " + std::to_string(task_uid) + " retry deadline (" +
          std::to_string(config.retry_deadline_ms) + " ms) exceeded after " +
          std::to_string(attempt + 1) +
          " attempts; last error: " + last.ToString());
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    counters->backoff_us.fetch_add(static_cast<int64_t>(backoff_ms * 1000.0),
                                   std::memory_order_relaxed);
  }
  return agl::Status::Aborted("task " + std::to_string(task_uid) +
                              " exhausted " +
                              std::to_string(config.max_task_attempts) +
                              " attempts; last error: " + last.ToString());
}

}  // namespace

agl::Result<std::vector<KeyValue>> RunMapPhase(const JobConfig& config,
                                               std::span<const KeyValue> input,
                                               const MapperFactory& mapper,
                                               JobStats* stats) {
  Stopwatch watch;
  const int num_tasks = std::max(1, config.num_map_tasks);
  const std::size_t chunk = (input.size() + num_tasks - 1) / num_tasks;

  std::vector<std::vector<KeyValue>> task_outputs(num_tasks);
  std::vector<agl::Status> task_status(num_tasks);
  RetryCounters counters;

  ThreadPool pool(static_cast<std::size_t>(std::max(1, config.num_workers)));
  std::vector<std::future<void>> futs;
  for (int t = 0; t < num_tasks; ++t) {
    futs.push_back(pool.Submit([&, t] {
      const std::size_t begin = static_cast<std::size_t>(t) * chunk;
      const std::size_t end = std::min(input.size(), begin + chunk);
      task_status[t] = RunWithRetry(
          config, "mr.map", static_cast<uint64_t>(t), &counters, [&]() {
            // Fresh mapper + output per attempt: failed attempts leave no
            // partial state behind.
            auto m = mapper();
            Emitter emitter;
            for (std::size_t i = begin; i < end; ++i) {
              AGL_RETURN_IF_ERROR(m->Map(input[i], &emitter));
            }
            task_outputs[t] = std::move(emitter.records());
            return agl::Status::OK();
          });
    }));
  }
  for (auto& f : futs) f.get();
  // Retry accounting is surfaced even when the phase fails — attempts and
  // backoff are exactly what a caller debugging the failure wants.
  if (stats != nullptr) {
    stats->map_tasks += num_tasks;
    stats->failed_attempts += counters.failed_attempts.load();
    stats->task_attempts += counters.task_attempts.load();
    stats->retry_backoff_ms +=
        static_cast<double>(counters.backoff_us.load()) / 1000.0;
    stats->input_records += static_cast<int64_t>(input.size());
    stats->elapsed_seconds += watch.Seconds();
  }
  for (const agl::Status& s : task_status) {
    if (!s.ok()) return s;
  }

  std::vector<KeyValue> out;
  std::size_t total = 0;
  for (const auto& v : task_outputs) total += v.size();
  out.reserve(total);
  for (auto& v : task_outputs) {
    for (KeyValue& kv : v) out.push_back(std::move(kv));
  }
  return out;
}

agl::Result<std::vector<KeyValue>> RunReducePhase(
    const JobConfig& config, std::vector<KeyValue> input,
    const ReducerFactory& reducer, JobStats* stats) {
  Stopwatch watch;
  const int num_parts = std::max(1, config.num_reduce_tasks);

  // Shuffle: hash-partition records by key.
  std::vector<std::vector<KeyValue>> partitions(num_parts);
  for (KeyValue& kv : input) {
    partitions[Fnv1aHash(kv.key) % num_parts].push_back(std::move(kv));
  }
  const int64_t shuffled = static_cast<int64_t>(input.size());
  input.clear();
  input.shrink_to_fit();

  std::vector<std::vector<KeyValue>> task_outputs(num_parts);
  std::vector<agl::Status> task_status(num_parts);
  RetryCounters counters;
  int64_t max_task_records = 0;
  for (const auto& p : partitions) {
    max_task_records =
        std::max(max_task_records, static_cast<int64_t>(p.size()));
  }

  ThreadPool pool(static_cast<std::size_t>(std::max(1, config.num_workers)));
  std::vector<std::future<void>> futs;
  for (int t = 0; t < num_parts; ++t) {
    futs.push_back(pool.Submit([&, t] {
      task_status[t] = RunWithRetry(
          config, "mr.reduce", 100000 + static_cast<uint64_t>(t), &counters,
          [&]() {
            // Group by key and sort each group's values byte-wise. The
            // canonical (key, value) order makes every reduce call see the
            // same value sequence for a given input multiset, no matter how
            // the records were partitioned upstream — the invariant the
            // sharded GraphFlat pipeline relies on for shard-count-
            // invariant output.
            std::vector<KeyValue> part = partitions[t];  // copy per attempt
            std::sort(part.begin(), part.end(),
                      [](const KeyValue& a, const KeyValue& b) {
                        return a.key != b.key ? a.key < b.key
                                              : a.value < b.value;
                      });
            auto r = reducer();
            Emitter emitter;
            std::size_t i = 0;
            std::vector<std::string> values;
            while (i < part.size()) {
              std::size_t j = i;
              values.clear();
              while (j < part.size() && part[j].key == part[i].key) {
                values.push_back(std::move(part[j].value));
                ++j;
              }
              AGL_RETURN_IF_ERROR(r->Reduce(part[i].key, values, &emitter));
              i = j;
            }
            task_outputs[t] = std::move(emitter.records());
            return agl::Status::OK();
          });
    }));
  }
  for (auto& f : futs) f.get();
  if (stats != nullptr) {
    stats->reduce_tasks += num_parts;
    stats->failed_attempts += counters.failed_attempts.load();
    stats->task_attempts += counters.task_attempts.load();
    stats->retry_backoff_ms +=
        static_cast<double>(counters.backoff_us.load()) / 1000.0;
    stats->shuffled_records += shuffled;
    stats->max_reduce_task_records =
        std::max(stats->max_reduce_task_records, max_task_records);
    stats->elapsed_seconds += watch.Seconds();
  }
  for (const agl::Status& s : task_status) {
    if (!s.ok()) return s;
  }

  std::vector<KeyValue> out;
  std::size_t total = 0;
  for (const auto& v : task_outputs) total += v.size();
  out.reserve(total);
  for (auto& v : task_outputs) {
    for (KeyValue& kv : v) out.push_back(std::move(kv));
  }
  if (stats != nullptr) {
    stats->output_records += static_cast<int64_t>(out.size());
  }
  return out;
}

agl::Result<std::vector<KeyValue>> RunJob(const JobConfig& config,
                                          std::span<const KeyValue> input,
                                          const MapperFactory& mapper,
                                          const ReducerFactory& reducer,
                                          JobStats* stats) {
  AGL_ASSIGN_OR_RETURN(std::vector<KeyValue> mapped,
                       RunMapPhase(config, input, mapper, stats));
  return RunReducePhase(config, std::move(mapped), reducer, stats);
}

}  // namespace agl::mr
