#include "mr/mapreduce.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace agl::mr {
namespace {

/// Runs `task(attempt)` with retry and deterministic fault injection.
/// `task_uid` decorrelates the injection stream across tasks and rounds.
agl::Status RunWithRetry(const JobConfig& config, uint64_t task_uid,
                         std::atomic<int64_t>* failed_attempts,
                         const std::function<agl::Status()>& task) {
  agl::Status last;
  for (int attempt = 0; attempt < config.max_task_attempts; ++attempt) {
    if (config.fault_injection_rate > 0.0) {
      Rng rng(DeriveSeed(config.seed,
                         task_uid * 131 + static_cast<uint64_t>(attempt)));
      if (rng.Bernoulli(config.fault_injection_rate)) {
        failed_attempts->fetch_add(1, std::memory_order_relaxed);
        last = agl::Status::Aborted("injected fault (task " +
                                    std::to_string(task_uid) + " attempt " +
                                    std::to_string(attempt) + ")");
        continue;
      }
    }
    last = task();
    if (last.ok()) return last;
    failed_attempts->fetch_add(1, std::memory_order_relaxed);
  }
  return agl::Status::Aborted("task " + std::to_string(task_uid) +
                              " exhausted " +
                              std::to_string(config.max_task_attempts) +
                              " attempts; last error: " + last.ToString());
}

}  // namespace

agl::Result<std::vector<KeyValue>> RunMapPhase(const JobConfig& config,
                                               std::span<const KeyValue> input,
                                               const MapperFactory& mapper,
                                               JobStats* stats) {
  Stopwatch watch;
  const int num_tasks = std::max(1, config.num_map_tasks);
  const std::size_t chunk = (input.size() + num_tasks - 1) / num_tasks;

  std::vector<std::vector<KeyValue>> task_outputs(num_tasks);
  std::vector<agl::Status> task_status(num_tasks);
  std::atomic<int64_t> failed_attempts{0};

  ThreadPool pool(static_cast<std::size_t>(std::max(1, config.num_workers)));
  std::vector<std::future<void>> futs;
  for (int t = 0; t < num_tasks; ++t) {
    futs.push_back(pool.Submit([&, t] {
      const std::size_t begin = static_cast<std::size_t>(t) * chunk;
      const std::size_t end = std::min(input.size(), begin + chunk);
      task_status[t] = RunWithRetry(
          config, static_cast<uint64_t>(t), &failed_attempts, [&]() {
            // Fresh mapper + output per attempt: failed attempts leave no
            // partial state behind.
            auto m = mapper();
            Emitter emitter;
            for (std::size_t i = begin; i < end; ++i) {
              AGL_RETURN_IF_ERROR(m->Map(input[i], &emitter));
            }
            task_outputs[t] = std::move(emitter.records());
            return agl::Status::OK();
          });
    }));
  }
  for (auto& f : futs) f.get();
  for (const agl::Status& s : task_status) {
    if (!s.ok()) return s;
  }

  std::vector<KeyValue> out;
  std::size_t total = 0;
  for (const auto& v : task_outputs) total += v.size();
  out.reserve(total);
  for (auto& v : task_outputs) {
    for (KeyValue& kv : v) out.push_back(std::move(kv));
  }
  if (stats != nullptr) {
    stats->map_tasks += num_tasks;
    stats->failed_attempts += failed_attempts.load();
    stats->input_records += static_cast<int64_t>(input.size());
    stats->elapsed_seconds += watch.Seconds();
  }
  return out;
}

agl::Result<std::vector<KeyValue>> RunReducePhase(
    const JobConfig& config, std::vector<KeyValue> input,
    const ReducerFactory& reducer, JobStats* stats) {
  Stopwatch watch;
  const int num_parts = std::max(1, config.num_reduce_tasks);

  // Shuffle: hash-partition records by key.
  std::vector<std::vector<KeyValue>> partitions(num_parts);
  for (KeyValue& kv : input) {
    partitions[Fnv1aHash(kv.key) % num_parts].push_back(std::move(kv));
  }
  const int64_t shuffled = static_cast<int64_t>(input.size());
  input.clear();
  input.shrink_to_fit();

  std::vector<std::vector<KeyValue>> task_outputs(num_parts);
  std::vector<agl::Status> task_status(num_parts);
  std::atomic<int64_t> failed_attempts{0};
  int64_t max_task_records = 0;
  for (const auto& p : partitions) {
    max_task_records =
        std::max(max_task_records, static_cast<int64_t>(p.size()));
  }

  ThreadPool pool(static_cast<std::size_t>(std::max(1, config.num_workers)));
  std::vector<std::future<void>> futs;
  for (int t = 0; t < num_parts; ++t) {
    futs.push_back(pool.Submit([&, t] {
      task_status[t] = RunWithRetry(
          config, 100000 + static_cast<uint64_t>(t), &failed_attempts, [&]() {
            // Group by key and sort each group's values byte-wise. The
            // canonical (key, value) order makes every reduce call see the
            // same value sequence for a given input multiset, no matter how
            // the records were partitioned upstream — the invariant the
            // sharded GraphFlat pipeline relies on for shard-count-
            // invariant output.
            std::vector<KeyValue> part = partitions[t];  // copy per attempt
            std::sort(part.begin(), part.end(),
                      [](const KeyValue& a, const KeyValue& b) {
                        return a.key != b.key ? a.key < b.key
                                              : a.value < b.value;
                      });
            auto r = reducer();
            Emitter emitter;
            std::size_t i = 0;
            std::vector<std::string> values;
            while (i < part.size()) {
              std::size_t j = i;
              values.clear();
              while (j < part.size() && part[j].key == part[i].key) {
                values.push_back(std::move(part[j].value));
                ++j;
              }
              AGL_RETURN_IF_ERROR(r->Reduce(part[i].key, values, &emitter));
              i = j;
            }
            task_outputs[t] = std::move(emitter.records());
            return agl::Status::OK();
          });
    }));
  }
  for (auto& f : futs) f.get();
  for (const agl::Status& s : task_status) {
    if (!s.ok()) return s;
  }

  std::vector<KeyValue> out;
  std::size_t total = 0;
  for (const auto& v : task_outputs) total += v.size();
  out.reserve(total);
  for (auto& v : task_outputs) {
    for (KeyValue& kv : v) out.push_back(std::move(kv));
  }
  if (stats != nullptr) {
    stats->reduce_tasks += num_parts;
    stats->failed_attempts += failed_attempts.load();
    stats->shuffled_records += shuffled;
    stats->output_records += static_cast<int64_t>(out.size());
    stats->max_reduce_task_records =
        std::max(stats->max_reduce_task_records, max_task_records);
    stats->elapsed_seconds += watch.Seconds();
  }
  return out;
}

agl::Result<std::vector<KeyValue>> RunJob(const JobConfig& config,
                                          std::span<const KeyValue> input,
                                          const MapperFactory& mapper,
                                          const ReducerFactory& reducer,
                                          JobStats* stats) {
  AGL_ASSIGN_OR_RETURN(std::vector<KeyValue> mapped,
                       RunMapPhase(config, input, mapper, stats));
  return RunReducePhase(config, std::move(mapped), reducer, stats);
}

}  // namespace agl::mr
