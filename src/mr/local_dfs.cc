#include "mr/local_dfs.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "io/record_file.h"

namespace agl::mr {

namespace fs = std::filesystem;

agl::Result<LocalDfs> LocalDfs::Open(const std::string& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return agl::Status::IoError("cannot create DFS root " + root + ": " +
                                ec.message());
  }
  return LocalDfs(root);
}

std::string LocalDfs::DatasetDir(const std::string& name) const {
  return root_ + "/" + name;
}

agl::Status LocalDfs::WriteDataset(const std::string& name,
                                   const std::vector<std::string>& records,
                                   int num_parts) {
  num_parts = std::max(1, num_parts);
  AGL_RETURN_IF_ERROR(DropDataset(name));
  const std::string dir = DatasetDir(name);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return agl::Status::IoError("cannot create dataset dir: " + ec.message());
  }
  std::vector<io::RecordWriter> writers;
  writers.reserve(num_parts);
  for (int p = 0; p < num_parts; ++p) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "/part-%05d", p);
    AGL_ASSIGN_OR_RETURN(io::RecordWriter w,
                         io::RecordWriter::Open(dir + buf));
    writers.push_back(std::move(w));
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    AGL_RETURN_IF_ERROR(writers[i % num_parts].Append(records[i]));
  }
  for (io::RecordWriter& w : writers) {
    AGL_RETURN_IF_ERROR(w.Close());
  }
  return agl::Status::OK();
}

agl::Result<std::vector<std::string>> LocalDfs::ReadDataset(
    const std::string& name) const {
  AGL_ASSIGN_OR_RETURN(std::vector<std::string> parts, ListParts(name));
  std::vector<std::string> records;
  for (const std::string& path : parts) {
    AGL_ASSIGN_OR_RETURN(io::RecordReader reader,
                         io::RecordReader::Open(path));
    AGL_RETURN_IF_ERROR(reader.ReadAll(&records));
  }
  return records;
}

agl::Result<std::vector<std::string>> LocalDfs::ListParts(
    const std::string& name) const {
  const std::string dir = DatasetDir(name);
  if (!fs::exists(dir)) {
    return agl::Status::NotFound("dataset not found: " + name);
  }
  std::vector<std::string> parts;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() &&
        entry.path().filename().string().rfind("part-", 0) == 0) {
      parts.push_back(entry.path().string());
    }
  }
  std::sort(parts.begin(), parts.end());
  return parts;
}

bool LocalDfs::DatasetExists(const std::string& name) const {
  return fs::exists(DatasetDir(name));
}

agl::Status LocalDfs::DropDataset(const std::string& name) {
  const std::string dir = DatasetDir(name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  if (ec) {
    return agl::Status::IoError("cannot drop dataset: " + ec.message());
  }
  return agl::Status::OK();
}

agl::Status LocalDfs::UnifyDatasets(const std::string& dest,
                                    const std::vector<std::string>& sources) {
  // Assemble in a scratch dataset and publish with one directory rename at
  // the end, so `dest` is never observable half-unified: a mid-unify
  // failure leaves the old dest (or none) plus the remaining staging
  // sources, which family-aware readers still resolve.
  const std::string scratch = dest + ".unify-tmp";
  AGL_RETURN_IF_ERROR(DropDataset(scratch));
  const std::string scratch_dir = DatasetDir(scratch);
  std::error_code ec;
  fs::create_directories(scratch_dir, ec);
  if (ec) {
    return agl::Status::IoError("cannot create dataset dir: " + ec.message());
  }
  int part = 0;
  for (const std::string& source : sources) {
    AGL_ASSIGN_OR_RETURN(std::vector<std::string> parts, ListParts(source));
    for (const std::string& src_path : parts) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "/part-%05d", part++);
      fs::rename(src_path, scratch_dir + buf, ec);
      if (ec) {
        return agl::Status::IoError("cannot move part " + src_path + ": " +
                                    ec.message());
      }
    }
  }
  AGL_RETURN_IF_ERROR(DropDataset(dest));
  fs::rename(scratch_dir, DatasetDir(dest), ec);
  if (ec) {
    return agl::Status::IoError("cannot publish dataset " + dest + ": " +
                                ec.message());
  }
  for (const std::string& source : sources) {
    AGL_RETURN_IF_ERROR(DropDataset(source));
  }
  return agl::Status::OK();
}

agl::Result<uint64_t> LocalDfs::DatasetBytes(const std::string& name) const {
  AGL_ASSIGN_OR_RETURN(std::vector<std::string> parts, ListParts(name));
  uint64_t total = 0;
  for (const std::string& p : parts) {
    std::error_code ec;
    total += fs::file_size(p, ec);
  }
  return total;
}

std::string ShardDatasetName(const std::string& base, int shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ".shard-%02d", shard);
  return base + buf;
}

}  // namespace agl::mr
