#include "mr/local_dfs.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>

#if !defined(_WIN32)
#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/failpoint.h"
#include "io/codec.h"
#include "io/record_file.h"

namespace agl::mr {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestFile = "MANIFEST";

struct ManifestEntry {
  std::string file;
  uint64_t bytes = 0;
};

std::string PartFileName(int part) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "part-%05d", part);
  return buf;
}

/// True for directory names a crashed publish can leave behind:
/// "<name>.tmp-<pid>-<nonce>" (WriteDataset), "<name>.unify-tmp-<pid>"
/// (UnifyDatasets), or their legacy pid-less spellings.
bool IsScratchDirName(const std::string& name) {
  return name.find(".unify-tmp") != std::string::npos ||
         name.find(".tmp-") != std::string::npos;
}

int64_t SelfPid() {
#if !defined(_WIN32)
  return static_cast<int64_t>(::getpid());
#else
  return 0;
#endif
}

/// Owner pid embedded in a scratch directory name, or 0 when the name
/// predates pid-embedding (legacy scratch — always reclaimable).
int64_t ScratchOwnerPid(const std::string& name) {
  const auto parse_pid = [](const std::string& s) -> int64_t {
    if (s.empty()) return 0;
    int64_t v = 0;
    for (const char c : s) {
      if (c < '0' || c > '9') return 0;
      v = v * 10 + (c - '0');
    }
    return v;
  };
  const std::size_t unify = name.rfind(".unify-tmp");
  if (unify != std::string::npos) {
    const std::string rest = name.substr(unify + 10);
    if (rest.empty() || rest[0] != '-') return 0;  // legacy ".unify-tmp"
    return parse_pid(rest.substr(1));
  }
  const std::size_t tmp = name.rfind(".tmp-");
  if (tmp == std::string::npos) return 0;
  const std::string rest = name.substr(tmp + 5);
  const std::size_t dash = rest.find('-');
  if (dash == std::string::npos) return 0;  // legacy ".tmp-<nonce>"
  return parse_pid(rest.substr(0, dash));
}

/// A scratch is live — and must not be reclaimed — only while a DIFFERENT
/// process that owns it is still running (it is mid-publish on another
/// dataset; the single-writer-per-dataset contract says it is not ours).
/// Our own scratches reaching a sweep are leftovers of an injected crash
/// or a failed publish, and legacy/dead-owner scratches are orphans.
bool ScratchIsLive(const std::string& name) {
  const int64_t pid = ScratchOwnerPid(name);
  if (pid == 0 || pid == SelfPid()) return false;
#if !defined(_WIN32)
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
#else
  return false;
#endif
}

/// Publishing a rename is only durable once the parent directory entry is
/// on disk too; best-effort (no error surface on platforms without it).
void FsyncDirBestEffort(const std::string& dir) {
#if !defined(_WIN32)
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)dir;
#endif
}

/// Writes `<dir>/MANIFEST`: one record listing every part and its byte
/// size. Readers treat its absence or any disagreement as a torn write.
agl::Status WriteManifest(const std::string& dir,
                          const std::vector<ManifestEntry>& entries) {
  io::BufferWriter body;
  body.PutVarint64(entries.size());
  for (const ManifestEntry& e : entries) {
    body.PutString(e.file);
    body.PutVarint64(e.bytes);
  }
  AGL_ASSIGN_OR_RETURN(io::RecordWriter writer, io::RecordWriter::Open(
                                                    dir + "/" + kManifestFile));
  AGL_RETURN_IF_ERROR(writer.Append(body.Release()));
  return writer.Close();
}

agl::Result<std::vector<ManifestEntry>> ReadManifest(const std::string& dir,
                                                     const std::string& name) {
  const std::string path = dir + "/" + kManifestFile;
  if (!fs::exists(path)) {
    return agl::Status::Corruption("dataset " + name +
                                   " has no manifest (torn write?)");
  }
  AGL_ASSIGN_OR_RETURN(io::RecordReader reader, io::RecordReader::Open(path));
  std::string body;
  AGL_RETURN_IF_ERROR(reader.Next(&body));
  io::BufferReader r(body);
  uint64_t n = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&n));
  std::vector<ManifestEntry> entries;
  entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ManifestEntry e;
    AGL_RETURN_IF_ERROR(r.GetString(&e.file));
    AGL_RETURN_IF_ERROR(r.GetVarint64(&e.bytes));
    entries.push_back(std::move(e));
  }
  return entries;
}

/// Checks every manifest entry against the file actually on disk.
agl::Status CheckManifest(const std::string& dir, const std::string& name,
                          const std::vector<ManifestEntry>& entries) {
  for (const ManifestEntry& e : entries) {
    std::error_code ec;
    const uint64_t size = fs::file_size(dir + "/" + e.file, ec);
    if (ec) {
      return agl::Status::Corruption("dataset " + name + " part " + e.file +
                                     " missing (torn write?)");
    }
    if (size != e.bytes) {
      return agl::Status::Corruption(
          "dataset " + name + " part " + e.file + " is " +
          std::to_string(size) + " bytes, manifest says " +
          std::to_string(e.bytes) + " (torn write?)");
    }
  }
  return agl::Status::OK();
}

}  // namespace

agl::Result<LocalDfs> LocalDfs::Open(const std::string& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return agl::Status::IoError("cannot create DFS root " + root + ": " +
                                ec.message());
  }
  // Sweep scratch directories orphaned by a crashed publish. A scratch
  // whose embedded owner pid is a live foreign process is a concurrent
  // writer mid-publish on another dataset and is left alone. Published
  // datasets are untouched; spill files and other plain files under the
  // root are not directories and are skipped.
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory()) continue;
    const std::string dir_name = entry.path().filename().string();
    if (IsScratchDirName(dir_name) && !ScratchIsLive(dir_name)) {
      std::error_code rm_ec;
      fs::remove_all(entry.path(), rm_ec);
    }
  }
  return LocalDfs(root);
}

std::string LocalDfs::DatasetDir(const std::string& name) const {
  return root_ + "/" + name;
}

agl::Status LocalDfs::RemovePublishedDir(const std::string& name) {
  std::error_code ec;
  fs::remove_all(DatasetDir(name), ec);
  if (ec) {
    return agl::Status::IoError("cannot remove dataset " + name + ": " +
                                ec.message());
  }
  return agl::Status::OK();
}

void LocalDfs::SweepScratchFor(const std::string& name) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (!entry.is_directory()) continue;
    const std::string dir_name = entry.path().filename().string();
    const bool mine = dir_name.rfind(name + ".unify-tmp", 0) == 0 ||
                      dir_name.rfind(name + ".tmp-", 0) == 0;
    if (mine && !ScratchIsLive(dir_name)) {
      std::error_code rm_ec;
      fs::remove_all(entry.path(), rm_ec);
    }
  }
}

agl::Status LocalDfs::WriteDataset(const std::string& name,
                                   const std::vector<std::string>& records,
                                   int num_parts) {
  num_parts = std::max(1, num_parts);
  // Stale scratches for this name (from a crashed earlier attempt) would
  // otherwise accumulate until the next Open.
  SweepScratchFor(name);
  // The writer pid in the scratch name lets sweeps distinguish orphans
  // from a live concurrent publisher in another process.
  static std::atomic<uint64_t> nonce{0};
  const std::string scratch_dir =
      DatasetDir(name) + ".tmp-" + std::to_string(SelfPid()) + "-" +
      std::to_string(nonce.fetch_add(1, std::memory_order_relaxed));
  std::error_code ec;
  fs::create_directories(scratch_dir, ec);
  if (ec) {
    return agl::Status::IoError("cannot create dataset dir: " + ec.message());
  }
  // Assemble parts + manifest in the scratch. On a non-crash failure the
  // scratch is cleaned up here; an injected crash leaves it behind exactly
  // as a real kill would (the Open/DropDataset sweeps reclaim it).
  agl::Status build = [&]() -> agl::Status {
    std::vector<io::RecordWriter> writers;
    writers.reserve(num_parts);
    for (int p = 0; p < num_parts; ++p) {
      AGL_ASSIGN_OR_RETURN(
          io::RecordWriter w,
          io::RecordWriter::Open(scratch_dir + "/" + PartFileName(p)));
      writers.push_back(std::move(w));
    }
    for (std::size_t i = 0; i < records.size(); ++i) {
      AGL_RETURN_IF_ERROR(writers[i % num_parts].Append(records[i]));
    }
    std::vector<ManifestEntry> entries;
    entries.reserve(num_parts);
    for (int p = 0; p < num_parts; ++p) {
      const uint64_t bytes = writers[p].bytes_written();
      AGL_RETURN_IF_ERROR(writers[p].Close());
      entries.push_back(ManifestEntry{PartFileName(p), bytes});
    }
    AGL_RETURN_IF_ERROR(WriteManifest(scratch_dir, entries));
    return fail::MaybeFail("dfs.rename");
  }();
  if (!build.ok()) {
    if (!fail::IsInjectedCrash(build)) {
      std::error_code rm_ec;
      fs::remove_all(scratch_dir, rm_ec);
    }
    return build;
  }
  AGL_RETURN_IF_ERROR(RemovePublishedDir(name));
  fs::rename(scratch_dir, DatasetDir(name), ec);
  if (ec) {
    return agl::Status::IoError("cannot publish dataset " + name + ": " +
                                ec.message());
  }
  FsyncDirBestEffort(root_);
  return agl::Status::OK();
}

agl::Result<std::vector<std::string>> LocalDfs::ReadDataset(
    const std::string& name) const {
  AGL_ASSIGN_OR_RETURN(std::vector<std::string> parts, ListParts(name));
  std::vector<std::string> records;
  for (const std::string& path : parts) {
    AGL_ASSIGN_OR_RETURN(io::RecordReader reader,
                         io::RecordReader::Open(path));
    AGL_RETURN_IF_ERROR(reader.ReadAll(&records));
  }
  return records;
}

agl::Result<std::vector<std::string>> LocalDfs::ListParts(
    const std::string& name) const {
  AGL_RETURN_IF_ERROR(fail::MaybeFail("dfs.read"));
  const std::string dir = DatasetDir(name);
  if (!fs::exists(dir)) {
    return agl::Status::NotFound("dataset not found: " + name);
  }
  AGL_ASSIGN_OR_RETURN(std::vector<ManifestEntry> entries,
                       ReadManifest(dir, name));
  AGL_RETURN_IF_ERROR(CheckManifest(dir, name, entries));
  std::vector<std::string> parts;
  parts.reserve(entries.size());
  for (const ManifestEntry& e : entries) {
    parts.push_back(dir + "/" + e.file);
  }
  return parts;
}

bool LocalDfs::DatasetExists(const std::string& name) const {
  return fs::exists(DatasetDir(name) + "/" + kManifestFile);
}

agl::Status LocalDfs::DropDataset(const std::string& name) {
  SweepScratchFor(name);
  return RemovePublishedDir(name);
}

agl::Status LocalDfs::UnifyDatasets(const std::string& dest,
                                    const std::vector<std::string>& sources) {
  // Assemble in a scratch dataset and publish with one directory rename at
  // the end, so `dest` is never observable half-unified. Parts are
  // hard-linked (copied when the filesystem refuses links), not moved:
  // the sources stay valid until dest is published, which makes a crashed
  // unify simply re-runnable.
  const std::string scratch_dir =
      DatasetDir(dest) + ".unify-tmp-" + std::to_string(SelfPid());
  std::error_code ec;
  fs::remove_all(scratch_dir, ec);  // stale scratch from a crashed attempt
  fs::create_directories(scratch_dir, ec);
  if (ec) {
    return agl::Status::IoError("cannot create dataset dir: " + ec.message());
  }
  agl::Status build = [&]() -> agl::Status {
    std::vector<ManifestEntry> entries;
    int part = 0;
    for (const std::string& source : sources) {
      AGL_ASSIGN_OR_RETURN(std::vector<std::string> parts, ListParts(source));
      for (const std::string& src_path : parts) {
        const std::string file = PartFileName(part++);
        const std::string dst_path = scratch_dir + "/" + file;
        std::error_code link_ec;
        fs::create_hard_link(src_path, dst_path, link_ec);
        if (link_ec) {
          std::error_code copy_ec;
          fs::copy_file(src_path, dst_path, copy_ec);
          if (copy_ec) {
            return agl::Status::IoError("cannot stage part " + src_path +
                                        ": " + copy_ec.message());
          }
        }
        std::error_code size_ec;
        const uint64_t bytes = fs::file_size(dst_path, size_ec);
        if (size_ec) {
          return agl::Status::IoError("cannot stat staged part " + dst_path +
                                      ": " + size_ec.message());
        }
        entries.push_back(ManifestEntry{file, bytes});
      }
    }
    AGL_RETURN_IF_ERROR(WriteManifest(scratch_dir, entries));
    return fail::MaybeFail("dfs.rename");
  }();
  if (!build.ok()) {
    if (!fail::IsInjectedCrash(build)) {
      std::error_code rm_ec;
      fs::remove_all(scratch_dir, rm_ec);
    }
    return build;
  }
  AGL_RETURN_IF_ERROR(RemovePublishedDir(dest));
  fs::rename(scratch_dir, DatasetDir(dest), ec);
  if (ec) {
    return agl::Status::IoError("cannot publish dataset " + dest + ": " +
                                ec.message());
  }
  FsyncDirBestEffort(root_);
  for (const std::string& source : sources) {
    AGL_RETURN_IF_ERROR(DropDataset(source));
  }
  return agl::Status::OK();
}

agl::Result<uint64_t> LocalDfs::DatasetBytes(const std::string& name) const {
  AGL_ASSIGN_OR_RETURN(std::vector<std::string> parts, ListParts(name));
  uint64_t total = 0;
  for (const std::string& p : parts) {
    std::error_code ec;
    total += fs::file_size(p, ec);
  }
  return total;
}

std::vector<std::string> LocalDfs::ListDatasets() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (!IsScratchDirName(name)) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

agl::Status LocalDfs::ValidateDatasetDir(const std::string& name) const {
  const std::string dir = DatasetDir(name);
  AGL_ASSIGN_OR_RETURN(std::vector<ManifestEntry> entries,
                       ReadManifest(dir, name));
  return CheckManifest(dir, name, entries);
}

agl::Status LocalDfs::ValidateAllDatasets() const {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (IsScratchDirName(name)) {
      // A live foreign owner is mid-publish on another dataset — its
      // scratch is expected traffic, not leaked state.
      if (ScratchIsLive(name)) continue;
      return agl::Status::Corruption("stale scratch directory on DFS: " +
                                     name);
    }
    AGL_RETURN_IF_ERROR(ValidateDatasetDir(name));
  }
  return agl::Status::OK();
}

std::string ShardDatasetName(const std::string& base, int shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ".shard-%02d", shard);
  return base + buf;
}

}  // namespace agl::mr
