// Multi-threaded local MapReduce engine — the "mature infrastructure" AGL is
// built on instead of a custom graph store. Semantics follow Dean &
// Ghemawat: map over input splits, hash-shuffle by key, grouped reduce.
//
// Fault tolerance is task-level, like the real thing: a task attempt that
// fails with a *transient* error (IsRetryableError: Aborted, IoError,
// Unavailable) is retried up to `max_task_attempts` times with capped
// exponential backoff and a fresh Mapper/Reducer instance, so user code
// must be idempotent per attempt. Permanent errors (Corruption,
// InvalidArgument, ...) fail the job immediately. Fault injection for
// tests goes through the "mr.map"/"mr.reduce" failpoints
// (common/failpoint.h). Workers are threads; the worker count models the
// paper's cluster width.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace agl::mr {

/// One record flowing through the pipeline.
struct KeyValue {
  std::string key;
  std::string value;
};

/// Collects the records a task emits.
class Emitter {
 public:
  void Emit(std::string key, std::string value) {
    out_.push_back({std::move(key), std::move(value)});
  }
  std::vector<KeyValue>& records() { return out_; }

 private:
  std::vector<KeyValue> out_;
};

/// User map function; a fresh instance is constructed per task attempt.
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual agl::Status Map(const KeyValue& input, Emitter* out) = 0;
};

/// User reduce function; receives every value that shares a shuffle key.
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual agl::Status Reduce(const std::string& key,
                             const std::vector<std::string>& values,
                             Emitter* out) = 0;
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

struct JobConfig {
  /// Parallel worker threads executing tasks.
  int num_workers = 4;
  /// Input splits for the map phase.
  int num_map_tasks = 8;
  /// Shuffle partitions / reduce tasks.
  int num_reduce_tasks = 8;
  /// A task attempt is retried until this many failures.
  int max_task_attempts = 3;
  /// First retry backoff; doubles per attempt up to `backoff_max_ms`, with
  /// deterministic seeded jitter in [0.5, 1.0) of the nominal value.
  double backoff_initial_ms = 1.0;
  double backoff_max_ms = 100.0;
  /// Overall per-task retry budget (wall clock, 0 = unlimited): a retry
  /// whose backoff would overrun it aborts the task instead.
  double retry_deadline_ms = 0.0;
  /// Seeds the backoff jitter (and, historically, fault injection — now
  /// the failpoint registry's own seed governs that).
  uint64_t seed = 1234;
};

/// Aggregate execution statistics (exposed for load-balance experiments).
struct JobStats {
  int64_t map_tasks = 0;
  int64_t reduce_tasks = 0;
  int64_t failed_attempts = 0;
  /// Total task attempts started (successful + failed).
  int64_t task_attempts = 0;
  /// Total milliseconds tasks spent sleeping between retries.
  double retry_backoff_ms = 0;
  int64_t input_records = 0;
  int64_t shuffled_records = 0;
  int64_t output_records = 0;
  /// Max records processed by a single reduce task (skew indicator).
  int64_t max_reduce_task_records = 0;
  double elapsed_seconds = 0;

  void Accumulate(const JobStats& other) {
    map_tasks += other.map_tasks;
    reduce_tasks += other.reduce_tasks;
    failed_attempts += other.failed_attempts;
    task_attempts += other.task_attempts;
    retry_backoff_ms += other.retry_backoff_ms;
    input_records += other.input_records;
    shuffled_records += other.shuffled_records;
    output_records += other.output_records;
    max_reduce_task_records =
        std::max(max_reduce_task_records, other.max_reduce_task_records);
    elapsed_seconds += other.elapsed_seconds;
  }
};

/// Runs only the map phase: input records -> emitted records (unshuffled).
agl::Result<std::vector<KeyValue>> RunMapPhase(const JobConfig& config,
                                               std::span<const KeyValue> input,
                                               const MapperFactory& mapper,
                                               JobStats* stats = nullptr);

/// Shuffles by key and runs the reduce phase. This is the unit GraphFlat
/// and GraphInfer iterate K times.
///
/// Determinism guarantee: values are delivered to each Reduce call in
/// canonical byte order, so the phase's output depends only on the input
/// *multiset* — not on input record order, `num_reduce_tasks`, or how the
/// records were partitioned across upstream jobs (the property the sharded
/// GraphFlat pipeline builds on).
agl::Result<std::vector<KeyValue>> RunReducePhase(
    const JobConfig& config, std::vector<KeyValue> input,
    const ReducerFactory& reducer, JobStats* stats = nullptr);

/// Full job: map, shuffle, reduce.
agl::Result<std::vector<KeyValue>> RunJob(const JobConfig& config,
                                          std::span<const KeyValue> input,
                                          const MapperFactory& mapper,
                                          const ReducerFactory& reducer,
                                          JobStats* stats = nullptr);

}  // namespace agl::mr
