// LocalDfs: a directory of checksummed part-files standing in for the
// distributed file system where GraphFlat stores flattened GraphFeatures
// ("Storing" step of §3.2.1) and GraphInfer reads/writes embeddings.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace agl::mr {

/// File-system backed record store. Datasets are subdirectories holding
/// part-00000..part-NNNNN record files.
class LocalDfs {
 public:
  /// `root` is created if missing.
  static agl::Result<LocalDfs> Open(const std::string& root);

  /// Writes `records` as `num_parts` part files (round-robin), replacing the
  /// dataset if it exists.
  agl::Status WriteDataset(const std::string& name,
                           const std::vector<std::string>& records,
                           int num_parts = 1);

  /// Reads every record of a dataset (part order, then file order).
  agl::Result<std::vector<std::string>> ReadDataset(
      const std::string& name) const;

  /// Lists the part files of a dataset (absolute paths, sorted).
  agl::Result<std::vector<std::string>> ListParts(
      const std::string& name) const;

  bool DatasetExists(const std::string& name) const;

  /// Removes a dataset and its part files.
  agl::Status DropDataset(const std::string& name);

  /// Unifies the part files of `sources` (in order) under a single dataset
  /// `dest` with stable part numbering: source i's parts keep their relative
  /// order and are renamed part-<offset+j> where offset counts all parts of
  /// earlier sources. The sources are consumed (their directories removed);
  /// an existing `dest` is replaced. Sharded GraphFlat uses this to merge
  /// per-shard outputs into one logical dataset.
  agl::Status UnifyDatasets(const std::string& dest,
                            const std::vector<std::string>& sources);

  /// Total bytes across the dataset's part files.
  agl::Result<uint64_t> DatasetBytes(const std::string& name) const;

  const std::string& root() const { return root_; }

 private:
  explicit LocalDfs(std::string root) : root_(std::move(root)) {}

  std::string DatasetDir(const std::string& name) const;

  std::string root_;
};

/// Canonical name of shard `shard`'s slice of dataset `base`
/// ("<base>.shard-NN"): the staging layout sharded writers produce before
/// UnifyDatasets, and the family readers fall back to when the merge has
/// not run.
std::string ShardDatasetName(const std::string& base, int shard);

}  // namespace agl::mr
