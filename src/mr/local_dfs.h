// LocalDfs: a directory of checksummed part-files standing in for the
// distributed file system where GraphFlat stores flattened GraphFeatures
// ("Storing" step of §3.2.1) and GraphInfer reads/writes embeddings.
//
// Crash consistency: a dataset is only ever published with a single
// directory rename. Writers assemble parts plus a MANIFEST (part names and
// sizes) in a scratch directory ("<name>.tmp-<pid>-<nonce>" for
// WriteDataset, "<name>.unify-tmp-<pid>" for UnifyDatasets), fsync
// everything, and rename the scratch over the destination. A crash
// therefore leaves either the old dataset or the new one — never a
// readable partial. Scratch directories orphaned by a crash are swept on
// Open and DropDataset; a dataset whose MANIFEST is missing or disagrees
// with the part files on disk is reported as kCorruption, never silently
// read.
//
// Concurrency contract: many processes may Open the same root and
// read/write concurrently, subject to single-writer-per-dataset — for any
// dataset name, at most one process publishes (writes or unifies onto) it
// at a time. Under that contract every sweep is safe: the owner pid
// embedded in a scratch name lets Open / DropDataset / the pre-publish
// sweep reclaim only scratches whose owner is dead (or ourselves —
// leftovers of a failed earlier attempt), never a live peer's in-flight
// publish. ValidateAllDatasets likewise treats a live foreign scratch as
// expected traffic and flags only orphans. Legacy pid-less scratch names
// are always treated as orphaned. Two processes racing a publish onto the
// SAME name is outside the contract (last rename wins; a sweep may delete
// the loser's scratch).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace agl::mr {

/// File-system backed record store. Datasets are subdirectories holding
/// part-00000..part-NNNNN record files plus a MANIFEST.
class LocalDfs {
 public:
  /// `root` is created if missing; stale scratch directories left by a
  /// crashed writer are removed.
  static agl::Result<LocalDfs> Open(const std::string& root);

  /// Writes `records` as `num_parts` part files (round-robin), replacing the
  /// dataset if it exists. The publish is atomic (scratch + rename).
  agl::Status WriteDataset(const std::string& name,
                           const std::vector<std::string>& records,
                           int num_parts = 1);

  /// Reads every record of a dataset (part order, then file order).
  agl::Result<std::vector<std::string>> ReadDataset(
      const std::string& name) const;

  /// Lists the part files of a dataset (absolute paths, manifest order —
  /// which is part-number order). Returns kNotFound when the dataset does
  /// not exist and kCorruption when its manifest is missing or any part's
  /// size disagrees with it (torn write).
  agl::Result<std::vector<std::string>> ListParts(
      const std::string& name) const;

  /// True when the dataset directory and its manifest both exist.
  bool DatasetExists(const std::string& name) const;

  /// Removes a dataset, its part files, and any scratch directories left
  /// for it by a crashed writer.
  agl::Status DropDataset(const std::string& name);

  /// Unifies the part files of `sources` (in order) under a single dataset
  /// `dest` with stable part numbering: source i's parts keep their relative
  /// order and are renamed part-<offset+j> where offset counts all parts of
  /// earlier sources. The sources are consumed (their directories removed)
  /// only after `dest` is published, so a crash mid-unify leaves every
  /// source intact and the operation can simply be re-run. An existing
  /// `dest` is replaced. Sharded GraphFlat uses this to merge per-shard
  /// outputs into one logical dataset.
  agl::Status UnifyDatasets(const std::string& dest,
                            const std::vector<std::string>& sources);

  /// Total bytes across the dataset's part files.
  agl::Result<uint64_t> DatasetBytes(const std::string& name) const;

  /// Names of all published datasets under the root (sorted). Scratch
  /// directories are excluded.
  std::vector<std::string> ListDatasets() const;

  /// Integrity sweep over the whole root: kCorruption if any scratch
  /// directory is present (crashed writer not yet swept) or any dataset's
  /// parts disagree with its manifest. The chaos harness runs this after
  /// every faulted pipeline to prove no partial state leaked.
  agl::Status ValidateAllDatasets() const;

  const std::string& root() const { return root_; }

 private:
  explicit LocalDfs(std::string root) : root_(std::move(root)) {}

  std::string DatasetDir(const std::string& name) const;

  /// Removes only the published directory of `name` (not its scratches) —
  /// the pre-rename step of a publish, which must not purge the publisher's
  /// own scratch the way DropDataset would.
  agl::Status RemovePublishedDir(const std::string& name);

  /// Removes scratch directories belonging to `name`.
  void SweepScratchFor(const std::string& name);

  /// Manifest + part-size check for one published dataset directory.
  agl::Status ValidateDatasetDir(const std::string& name) const;

  std::string root_;
};

/// Canonical name of shard `shard`'s slice of dataset `base`
/// ("<base>.shard-NN"): the staging layout sharded writers produce before
/// UnifyDatasets, and the family readers fall back to when the merge has
/// not run.
std::string ShardDatasetName(const std::string& base, int shard);

}  // namespace agl::mr
