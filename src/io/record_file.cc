#include "io/record_file.h"

#include <cstdio>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "common/failpoint.h"
#include "io/codec.h"

namespace agl::io {
namespace {

// Software CRC32C table, generated on first use.
const uint32_t* Crc32cTable() {
  static uint32_t table[256];
  static bool init = [] {
    const uint32_t poly = 0x82f63b78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc & 1) ? (crc >> 1) ^ poly : crc >> 1;
      }
      table[i] = crc;
    }
    return true;
  }();
  (void)init;
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, std::size_t n) {
  const uint32_t* table = Crc32cTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

agl::Result<RecordWriter> RecordWriter::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return agl::Status::IoError("cannot open for write: " + path);
  }
  return RecordWriter(f);
}

agl::Result<RecordWriter> RecordWriter::OpenAppend(const std::string& path,
                                                   uint64_t valid_prefix_bytes) {
  // "r+b" keeps existing contents (unlike "ab", it also honors seeks for
  // the truncation point and never silently redirects writes to the end).
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    return agl::Status::IoError("cannot open for append: " + path);
  }
#if defined(_WIN32)
  const int seek_rc =
      _fseeki64(f, static_cast<long long>(valid_prefix_bytes), SEEK_SET);
#else
  // Drop any torn tail past the valid prefix before appending over it.
  const int trunc_rc =
      ::ftruncate(fileno(f), static_cast<off_t>(valid_prefix_bytes));
  if (trunc_rc != 0) {
    std::fclose(f);
    return agl::Status::IoError("cannot truncate " + path + " to " +
                                std::to_string(valid_prefix_bytes));
  }
  const int seek_rc =
      fseeko(f, static_cast<off_t>(valid_prefix_bytes), SEEK_SET);
#endif
  if (seek_rc != 0) {
    std::fclose(f);
    return agl::Status::IoError("cannot seek " + path + " to " +
                                std::to_string(valid_prefix_bytes));
  }
  RecordWriter writer(f);
  writer.bytes_written_ = valid_prefix_bytes;
  return writer;
}

RecordWriter::~RecordWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

RecordWriter::RecordWriter(RecordWriter&& other) noexcept
    : file_(other.file_),
      num_records_(other.num_records_),
      bytes_written_(other.bytes_written_) {
  other.file_ = nullptr;
}

RecordWriter& RecordWriter::operator=(RecordWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    num_records_ = other.num_records_;
    bytes_written_ = other.bytes_written_;
    other.file_ = nullptr;
  }
  return *this;
}

agl::Status RecordWriter::Append(const std::string& record) {
  if (file_ == nullptr) return agl::Status::FailedPrecondition("writer closed");
  AGL_RETURN_IF_ERROR(fail::MaybeFail("dfs.write"));
  BufferWriter header;
  header.PutVarint64(record.size());
  header.PutFixed32(Crc32c(record.data(), record.size()));
  if (std::fwrite(header.data().data(), 1, header.size(), file_) !=
      header.size()) {
    return agl::Status::IoError("short header write");
  }
  if (!record.empty() &&
      std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return agl::Status::IoError("short payload write");
  }
  ++num_records_;
  bytes_written_ += header.size() + record.size();
  return agl::Status::OK();
}

agl::Status RecordWriter::Flush() {
  if (file_ == nullptr) return agl::Status::FailedPrecondition("writer closed");
  if (std::fflush(file_) != 0) return agl::Status::IoError("fflush failed");
  return agl::Status::OK();
}

agl::Status RecordWriter::Sync() {
  if (file_ == nullptr) return agl::Status::FailedPrecondition("writer closed");
  AGL_RETURN_IF_ERROR(fail::MaybeFail("dfs.write"));
  if (std::fflush(file_) != 0) return agl::Status::IoError("fflush failed");
#if !defined(_WIN32)
  if (::fsync(fileno(file_)) != 0) return agl::Status::IoError("fsync failed");
#endif
  return agl::Status::OK();
}

agl::Status RecordWriter::Close() {
  if (file_ == nullptr) return agl::Status::OK();
  // Close is the durability point: flush the stdio buffer, push the page
  // cache to stable storage, and report any of the three failing — a
  // swallowed error here silently loses the tail of a part file.
  agl::Status injected = fail::MaybeFail("dfs.write");
  if (!injected.ok()) {
    std::fclose(file_);  // still release the descriptor
    file_ = nullptr;
    return injected;
  }
  if (std::fflush(file_) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    return agl::Status::IoError("fflush failed");
  }
#if !defined(_WIN32)
  if (::fsync(fileno(file_)) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    return agl::Status::IoError("fsync failed");
  }
#endif
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return agl::Status::IoError("fclose failed");
  return agl::Status::OK();
}

agl::Result<RecordReader> RecordReader::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return agl::Status::IoError("cannot open for read: " + path);
  }
  return RecordReader(f);
}

RecordReader::~RecordReader() {
  if (file_ != nullptr) std::fclose(file_);
}

RecordReader::RecordReader(RecordReader&& other) noexcept
    : file_(other.file_) {
  other.file_ = nullptr;
}

RecordReader& RecordReader::operator=(RecordReader&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

agl::Status RecordReader::Next(std::string* out) {
  if (file_ == nullptr) return agl::Status::FailedPrecondition("reader closed");
  // Decode the varint length byte-by-byte from the stream.
  uint64_t len = 0;
  int shift = 0;
  while (true) {
    int c = std::fgetc(file_);
    if (c == EOF) {
      if (shift == 0) return agl::Status::OutOfRange("end of file");
      return agl::Status::Corruption("truncated record length");
    }
    if (shift >= 64) return agl::Status::Corruption("record length overflow");
    len |= static_cast<uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
  }
  uint8_t crc_buf[4];
  if (std::fread(crc_buf, 1, 4, file_) != 4) {
    return agl::Status::Corruption("truncated record checksum");
  }
  uint32_t expected_crc;
  std::memcpy(&expected_crc, crc_buf, 4);
  out->resize(len);
  if (len > 0 && std::fread(out->data(), 1, len, file_) != len) {
    return agl::Status::Corruption("truncated record payload");
  }
  if (Crc32c(out->data(), out->size()) != expected_crc) {
    return agl::Status::Corruption("record checksum mismatch");
  }
  return agl::Status::OK();
}

agl::Status RecordReader::SeekTo(uint64_t offset) {
  if (file_ == nullptr) return agl::Status::FailedPrecondition("reader closed");
  // fseek takes a long, which is 32-bit on some ABIs — use the 64-bit
  // variants so offsets into spill files past 2 GiB don't wrap.
#if defined(_WIN32)
  const int rc = _fseeki64(file_, static_cast<long long>(offset), SEEK_SET);
#else
  const int rc = fseeko(file_, static_cast<off_t>(offset), SEEK_SET);
#endif
  if (rc != 0) {
    return agl::Status::IoError("seek to " + std::to_string(offset) +
                                " failed");
  }
  return agl::Status::OK();
}

agl::Status RecordReader::ReadAll(std::vector<std::string>* out) {
  while (true) {
    std::string rec;
    agl::Status s = Next(&rec);
    if (s.code() == agl::StatusCode::kOutOfRange) return agl::Status::OK();
    AGL_RETURN_IF_ERROR(s);
    out->push_back(std::move(rec));
  }
}

}  // namespace agl::io
