#include "io/codec.h"

namespace agl::io {

void BufferWriter::PutVarint64(uint64_t v) {
  while (v >= 0x80) {
    data_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  data_.push_back(static_cast<char>(v));
}

void BufferWriter::PutVarint64Signed(int64_t v) {
  // Zig-zag encoding.
  PutVarint64((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
}

void BufferWriter::PutFixed32(uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  data_.append(buf, 4);
}

void BufferWriter::PutFixed64(uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  data_.append(buf, 8);
}

void BufferWriter::PutFloat(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  PutFixed32(bits);
}

void BufferWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutFixed64(bits);
}

void BufferWriter::PutString(const std::string& s) {
  PutVarint64(s.size());
  data_.append(s);
}

void BufferWriter::PutBytes(const void* data, std::size_t n) {
  data_.append(static_cast<const char*>(data), n);
}

void BufferWriter::PutFloatArray(const std::vector<float>& v) {
  PutVarint64(v.size());
  if (!v.empty()) {
    data_.append(reinterpret_cast<const char*>(v.data()),
                 v.size() * sizeof(float));
  }
}

void BufferWriter::PutVarintArray(const std::vector<uint64_t>& v) {
  PutVarint64(v.size());
  for (uint64_t x : v) PutVarint64(x);
}

agl::Status BufferReader::GetVarint64(uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    AGL_RETURN_IF_ERROR(Need(1));
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift >= 64) {
      return agl::Status::Corruption("varint64 too long");
    }
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = result;
  return agl::Status::OK();
}

agl::Status BufferReader::GetVarint64Signed(int64_t* out) {
  uint64_t raw;
  AGL_RETURN_IF_ERROR(GetVarint64(&raw));
  *out = static_cast<int64_t>(raw >> 1) ^ -static_cast<int64_t>(raw & 1);
  return agl::Status::OK();
}

agl::Status BufferReader::GetFixed32(uint32_t* out) {
  AGL_RETURN_IF_ERROR(Need(4));
  std::memcpy(out, data_ + pos_, 4);
  pos_ += 4;
  return agl::Status::OK();
}

agl::Status BufferReader::GetFixed64(uint64_t* out) {
  AGL_RETURN_IF_ERROR(Need(8));
  std::memcpy(out, data_ + pos_, 8);
  pos_ += 8;
  return agl::Status::OK();
}

agl::Status BufferReader::GetFloat(float* out) {
  uint32_t bits;
  AGL_RETURN_IF_ERROR(GetFixed32(&bits));
  std::memcpy(out, &bits, 4);
  return agl::Status::OK();
}

agl::Status BufferReader::GetDouble(double* out) {
  uint64_t bits;
  AGL_RETURN_IF_ERROR(GetFixed64(&bits));
  std::memcpy(out, &bits, 8);
  return agl::Status::OK();
}

agl::Status BufferReader::GetString(std::string* out) {
  uint64_t n;
  AGL_RETURN_IF_ERROR(GetVarint64(&n));
  AGL_RETURN_IF_ERROR(Need(n));
  out->assign(data_ + pos_, n);
  pos_ += n;
  return agl::Status::OK();
}

agl::Status BufferReader::GetFloatArray(std::vector<float>* out) {
  uint64_t n;
  AGL_RETURN_IF_ERROR(GetVarint64(&n));
  // Validate the element count against the remaining bytes BEFORE the
  // multiply (which could wrap) and the resize (which could throw trying
  // to honor a corrupt multi-exabyte length).
  if (n > remaining() / sizeof(float)) {
    return agl::Status::Corruption(
        "float array length " + std::to_string(n) + " exceeds remaining " +
        std::to_string(remaining()) + " bytes");
  }
  out->resize(n);
  if (n > 0) {
    std::memcpy(out->data(), data_ + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
  }
  return agl::Status::OK();
}

agl::Status BufferReader::GetRaw(void* dst, std::size_t n) {
  AGL_RETURN_IF_ERROR(Need(n));
  // n == 0 must be a no-op: dst may be null (e.g. data() of an empty
  // vector) and memcpy's pointer arguments are declared nonnull.
  if (n > 0) {
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }
  return agl::Status::OK();
}

agl::Status BufferReader::GetVarintArray(std::vector<uint64_t>* out) {
  uint64_t n;
  AGL_RETURN_IF_ERROR(GetVarint64(&n));
  // Every element takes at least one byte, so a count beyond the remaining
  // bytes is corrupt — reject it before reserving memory for it.
  if (n > remaining()) {
    return agl::Status::Corruption(
        "varint array length " + std::to_string(n) + " exceeds remaining " +
        std::to_string(remaining()) + " bytes");
  }
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t v;
    AGL_RETURN_IF_ERROR(GetVarint64(&v));
    out->push_back(v);
  }
  return agl::Status::OK();
}

}  // namespace agl::io
