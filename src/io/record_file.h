// Length-prefixed, checksummed record files — the on-disk format used by the
// LocalDfs part files that stand in for the paper's distributed file system.
//
// Layout per record:  varint(length) | fixed32(crc of payload) | payload.

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace agl::io {

/// CRC32 (Castagnoli polynomial, software implementation) over a byte span.
uint32_t Crc32c(const void* data, std::size_t n);

/// Appends checksummed records to a file.
class RecordWriter {
 public:
  /// Opens (truncates) `path` for writing.
  static agl::Result<RecordWriter> Open(const std::string& path);

  /// Re-opens an existing file for appending after the first
  /// `valid_prefix_bytes` bytes, truncating anything past that point (a
  /// torn tail from a crash mid-append). `bytes_written()` resumes at the
  /// prefix length, so offsets recorded against the previous incarnation of
  /// the file stay valid. The persistent embedding store uses this to
  /// re-open its spill file across process restarts.
  static agl::Result<RecordWriter> OpenAppend(const std::string& path,
                                              uint64_t valid_prefix_bytes);
  ~RecordWriter();

  RecordWriter(RecordWriter&& other) noexcept;
  RecordWriter& operator=(RecordWriter&& other) noexcept;
  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  agl::Status Append(const std::string& record);
  agl::Status Flush();
  /// Flush + fsync without closing: the durability point for long-lived
  /// writers (e.g. one spill publish syncs a whole batch of appends at
  /// once instead of per record).
  agl::Status Sync();
  agl::Status Close();

  uint64_t num_records() const { return num_records_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  explicit RecordWriter(std::FILE* f) : file_(f) {}

  std::FILE* file_ = nullptr;
  uint64_t num_records_ = 0;
  uint64_t bytes_written_ = 0;
};

/// Sequentially reads checksummed records from a file.
class RecordReader {
 public:
  static agl::Result<RecordReader> Open(const std::string& path);
  ~RecordReader();

  RecordReader(RecordReader&& other) noexcept;
  RecordReader& operator=(RecordReader&& other) noexcept;
  RecordReader(const RecordReader&) = delete;
  RecordReader& operator=(const RecordReader&) = delete;

  /// Reads the next record into `*out`. Returns kOutOfRange at end-of-file
  /// and kCorruption on checksum mismatch or truncated payload.
  agl::Status Next(std::string* out);

  /// Repositions the reader at byte `offset` (a record boundary, e.g. the
  /// RecordWriter::bytes_written() value observed before the Append). The
  /// next Next() call reads the record starting there. GraphInfer's
  /// embedding-cache spill uses this for random access into its spill file.
  agl::Status SeekTo(uint64_t offset);

  /// Reads every remaining record.
  agl::Status ReadAll(std::vector<std::string>* out);

 private:
  explicit RecordReader(std::FILE* f) : file_(f) {}

  std::FILE* file_ = nullptr;
};

}  // namespace agl::io
