// Binary serialization primitives: a growable write buffer and a bounds-
// checked read cursor with varint / fixed-width / string / float-array
// codecs. This plays the role protobuf plays in the paper: GraphFeatures
// (k-hop neighborhoods) are flattened to these byte strings and stored on
// the distributed file system.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace agl::io {

/// Append-only byte buffer with varint-based encoders.
class BufferWriter {
 public:
  BufferWriter() = default;

  /// Unsigned LEB128 varint.
  void PutVarint64(uint64_t v);
  /// Zig-zag then varint (efficient for small negatives).
  void PutVarint64Signed(int64_t v);
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  void PutFloat(float v);
  void PutDouble(double v);
  /// Length-prefixed byte string.
  void PutString(const std::string& s);
  void PutBytes(const void* data, std::size_t n);
  /// Length-prefixed float array (raw little-endian payload).
  void PutFloatArray(const std::vector<float>& v);
  /// Length-prefixed varint array.
  void PutVarintArray(const std::vector<uint64_t>& v);

  const std::string& data() const { return data_; }
  std::string Release() { return std::move(data_); }
  std::size_t size() const { return data_.size(); }

 private:
  std::string data_;
};

/// Bounds-checked sequential reader over a byte span. All getters return a
/// Status so corrupted/truncated inputs surface as kCorruption instead of
/// undefined behaviour.
class BufferReader {
 public:
  BufferReader(const void* data, std::size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  explicit BufferReader(const std::string& s) : BufferReader(s.data(), s.size()) {}

  agl::Status GetVarint64(uint64_t* out);
  agl::Status GetVarint64Signed(int64_t* out);
  agl::Status GetFixed32(uint32_t* out);
  agl::Status GetFixed64(uint64_t* out);
  agl::Status GetFloat(float* out);
  agl::Status GetDouble(double* out);
  agl::Status GetString(std::string* out);
  agl::Status GetFloatArray(std::vector<float>* out);
  agl::Status GetVarintArray(std::vector<uint64_t>* out);
  /// Copies `n` raw bytes into `dst` and advances.
  agl::Status GetRaw(void* dst, std::size_t n);

  bool AtEnd() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }
  std::size_t position() const { return pos_; }

 private:
  agl::Status Need(uint64_t n) const {
    // Compared against the remainder (never `pos_ + n`): a hostile length
    // prefix near UINT64_MAX must not wrap around and pass the check.
    if (n > size_ - pos_) {
      return agl::Status::Corruption("buffer underflow: need " +
                                     std::to_string(n) + " bytes, have " +
                                     std::to_string(size_ - pos_));
    }
    return agl::Status::OK();
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace agl::io
