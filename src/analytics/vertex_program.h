// Vertex-program analytics layer: a compact gather-apply-scatter API (the
// GraphLab `ivertex_program` shape) compiled onto the same sharded
// MapReduce round loop that runs GraphFlat.
//
// One superstep is one Reduce round: each vertex receives its own state
// record plus the scatter messages its in-neighbors pushed in the previous
// round, folds the messages into a per-in-edge gather cache, recomputes its
// value with VertexProgram::Apply over the full cache (pure Jacobi
// recomputation — no dependence on message arrival order), and, when the
// value changed, pushes a fresh scatter message along every out-edge. A
// vertex whose in-neighbors are all quiet receives no messages and
// generates no traffic (the DynPageRank only-affected-vertices idiom), so
// the active set decays as the computation converges and the loop stops
// when a round produces zero messages.
//
// Determinism: the gather cache is keyed by source id (updates commute),
// Apply sees entries in sorted-source order, and the engine's canonical
// reduce-value ordering makes each round's output a function of the input
// multiset only. Combined with exact home-shard routing this makes the
// result byte-identical for every shard count — the property
// tests/analytics_test.cpp proves against an independent single-threaded
// oracle for each shipped program.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "flat/exchange.h"
#include "flat/tables.h"
#include "mr/local_dfs.h"
#include "mr/mapreduce.h"

namespace agl::analytics {

using flat::EdgeRecord;
using flat::NodeId;
using flat::NodeRecord;

/// Static per-vertex facts available to Init / Scatter / Apply. Degrees are
/// counted after the driver's adjacency normalization (symmetrization for
/// undirected programs, parallel-edge dedup).
struct VertexContext {
  NodeId id = 0;
  int64_t in_degree = 0;
  int64_t out_degree = 0;
  int64_t num_vertices = 0;
};

/// One slot of a vertex's gather cache: the latest scatter value received
/// along the in-edge `src -> self`. Every slot is filled in the first
/// superstep (all vertices scatter their initial value) and updated only
/// when the source re-activates.
struct GatherEntry {
  NodeId src = 0;
  float weight = 1.f;
  double value = 0.0;
  bool received = false;
};

/// A gather-apply-scatter vertex program. Implementations must be
/// immutable after construction: one instance is shared by all concurrent
/// reduce tasks and every method must be a pure function of its arguments
/// (task retries re-run them).
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// Program name, used by the CLI and in error messages.
  virtual std::string Name() const = 0;

  /// True: gather over both edge directions (the driver symmetrizes the
  /// edge table, so in- and out-adjacency coincide). False: gather strictly
  /// over in-edges, scatter strictly over out-edges.
  virtual bool Undirected() const { return false; }

  /// Initial vertex value, before any message exchange.
  virtual double Init(const VertexContext& ctx) const = 0;

  /// The value pushed along every out-edge when this vertex activates.
  virtual double Scatter(const VertexContext& /*ctx*/, double value) const {
    return value;
  }

  /// Recomputes the vertex value from the full gather set. `gathered` is
  /// sorted by source id; implementations must not depend on any other
  /// ordering. `current` is the value from the previous superstep.
  virtual double Apply(const VertexContext& ctx, double current,
                       std::span<const GatherEntry> gathered) const = 0;

  /// Does the change `previous -> next` re-activate the out-neighbors?
  /// Default: any bitwise value change (exact fixpoint programs). PageRank
  /// overrides this with its convergence tolerance.
  virtual bool Changed(double previous, double next) const {
    return previous != next;
  }
};

struct AnalyticsConfig {
  /// Upper bound on apply supersteps (the structural init round is not
  /// counted). The loop stops earlier when the active set drains.
  int max_supersteps = 50;
  /// Logical MapReduce shards; the vertex/edge tables are hash-partitioned
  /// with flat::ShardPlan and boundary messages are exchanged between
  /// supersteps. Output is invariant to this value.
  int num_shards = 1;
  /// Part files per DFS result dataset (RunVertexProgramToDfs).
  int output_parts = 4;
  mr::JobConfig job;

  /// Structural validation, called up front by every `agl::Run` facade
  /// entry point (and usable directly).
  agl::Status Validate() const;
};

struct AnalyticsStats {
  /// Apply supersteps actually run (excludes the init round).
  int supersteps = 0;
  /// True when the active set drained before `max_supersteps`.
  bool converged = false;
  int64_t num_vertices = 0;
  /// Gather-side edges after normalization (symmetrization + dedup).
  int64_t num_gather_edges = 0;
  /// Vertices receiving at least one message, per apply superstep.
  std::vector<int64_t> active_per_round;
  /// Scatter messages consumed per apply superstep.
  std::vector<int64_t> messages_per_round;
  double elapsed_seconds = 0;
  mr::JobStats job_stats;
  /// Boundary-exchange traffic (aggregated across shards).
  flat::ExchangeStats exchange;
};

struct AnalyticsResult {
  /// Final (vertex id, value), sorted by id.
  std::vector<std::pair<NodeId, double>> values;
  AnalyticsStats stats;

  /// Canonical byte serialization of `values` — the unit the shard-count
  /// invariance harness compares bit-for-bit.
  std::string SerializeValues() const;
};

/// Runs `program` over the node/edge tables until convergence (zero active
/// vertices) or `config.max_supersteps`. Validates the tables up front:
/// duplicate node ids and edges whose endpoints are missing from the node
/// table are kInvalidArgument.
agl::Result<AnalyticsResult> RunVertexProgram(
    const AnalyticsConfig& config, const VertexProgram& program,
    const std::vector<NodeRecord>& nodes, const std::vector<EdgeRecord>& edges);

/// Upfront table validation + adjacency normalization: duplicate node ids
/// and dangling edge endpoints are kInvalidArgument; undirected programs
/// get a symmetrized edge table; parallel (src, dst) rows collapse to the
/// minimum-weight edge. Exposed for the multi-process driver, which
/// normalizes once and partitions the result across shard processes.
agl::Result<std::vector<EdgeRecord>> NormalizeEdgeTable(
    const VertexProgram& program, const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges);

/// One shard's complete superstep loop against an Exchange: map over the
/// shard's table slice (post-NormalizeEdgeTable), the init reduce, then
/// gather-apply-scatter rounds with Publish/Collect of boundary messages
/// between them. Convergence is decided identically on every shard from an
/// AllGather of the per-shard active counts (messages home uniquely, so
/// the sums are exact), which keeps the shards' control flow in lockstep
/// without a central coordinator. Returns the shard's final 'S'-tagged
/// VertexState records. `stats` (optional) receives the shard-local job
/// counters plus the globally-agreed superstep/convergence numbers
/// (identical on every shard). This is the unit the in-process path runs
/// on S threads over an InMemoryExchange and the multi-process driver runs
/// in S shard worker processes over a DfsExchange.
agl::Result<std::vector<mr::KeyValue>> RunAnalyticsShard(
    const AnalyticsConfig& config, const VertexProgram& program, int shard,
    const std::vector<NodeRecord>& shard_nodes,
    const std::vector<EdgeRecord>& shard_edges, int64_t num_vertices,
    flat::Exchange* exchange, AnalyticsStats* stats = nullptr);

/// Folds the shards' final 'S'-tagged records into the id-sorted value
/// list, validating that exactly `num_vertices` states survived. Exposed
/// for the multi-process driver, which collects the records from the shard
/// processes' output datasets.
agl::Result<std::vector<std::pair<NodeId, double>>> CollectFinalValues(
    const std::vector<std::vector<mr::KeyValue>>& shard_records,
    int64_t num_vertices);

/// Same, then stores the result on `dfs`/`dataset` as a GraphFeatures
/// dataset: one single-node GraphFeature per vertex (target_id = vertex,
/// node_features = [1 x 1] holding the value), id-sorted round-robin over
/// `config.output_parts` — so the dataset bytes are also shard-count
/// invariant and every GraphFeature reader (LoadGraphFeatures,
/// DfsFeatureSource) can consume analytics output directly.
agl::Result<AnalyticsResult> RunVertexProgramToDfs(
    const AnalyticsConfig& config, const VertexProgram& program,
    const std::vector<NodeRecord>& nodes, const std::vector<EdgeRecord>& edges,
    mr::LocalDfs* dfs, const std::string& dataset);

/// Feature-generator composition: returns a copy of `nodes` with each
/// vertex's analytics value appended as one extra feature column, ready to
/// feed GraphFlat (e.g. PageRank as a node feature for the fraud example).
/// kInvalidArgument when `result` is missing a node's value.
agl::Result<std::vector<NodeRecord>> AugmentNodeTable(
    const std::vector<NodeRecord>& nodes, const AnalyticsResult& result);

}  // namespace agl::analytics
