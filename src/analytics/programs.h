// The four shipped vertex programs. Each is a small pure-function bundle
// over the GAS API in vertex_program.h; tests/testing/reference_analytics
// holds the independent single-threaded oracles they are verified against.

#pragma once

#include <memory>
#include <string>

#include "analytics/vertex_program.h"

namespace agl::analytics {

/// PageRank with uniform teleport: rank_v = (1-d)/N + d * sum_u rank_u /
/// out_degree_u over in-neighbors u. Edge weights are ignored. Dangling
/// mass is dropped (a vertex with no out-edges scatters nothing), matching
/// the reference power iteration. Convergence is tolerance-based: a vertex
/// whose rank moved by <= tolerance stops re-activating its neighbors.
class PageRankProgram : public VertexProgram {
 public:
  explicit PageRankProgram(double damping = 0.85, double tolerance = 1e-10);

  std::string Name() const override { return "pagerank"; }
  double Init(const VertexContext& ctx) const override;
  double Scatter(const VertexContext& ctx, double value) const override;
  double Apply(const VertexContext& ctx, double current,
               std::span<const GatherEntry> gathered) const override;
  bool Changed(double previous, double next) const override;

  double damping() const { return damping_; }
  double tolerance() const { return tolerance_; }

 private:
  double damping_;
  double tolerance_;
};

/// Connected components by min-label propagation on the symmetrized graph:
/// every vertex converges to the smallest node id in its (weakly)
/// connected component. Exact integer fixpoint — bitwise comparable to the
/// union-find oracle for node ids below 2^53.
class ConnectedComponentsProgram : public VertexProgram {
 public:
  std::string Name() const override { return "cc"; }
  bool Undirected() const override { return true; }
  double Init(const VertexContext& ctx) const override;
  double Apply(const VertexContext& ctx, double current,
               std::span<const GatherEntry> gathered) const override;
};

/// Single-source shortest paths over directed weighted edges
/// (Bellman-Ford-style relaxation; unreachable vertices stay +inf).
/// Requires non-negative weights to be comparable to the Dijkstra oracle;
/// the relaxation expression `dist_u + weight` is evaluated identically in
/// both, so converged distances match bitwise.
class SsspProgram : public VertexProgram {
 public:
  explicit SsspProgram(NodeId source) : source_(source) {}

  std::string Name() const override { return "sssp"; }
  double Init(const VertexContext& ctx) const override;
  double Apply(const VertexContext& ctx, double current,
               std::span<const GatherEntry> gathered) const override;

  NodeId source() const { return source_; }

 private:
  NodeId source_;
};

/// Synchronous label propagation on the symmetrized graph, unweighted
/// majority vote over neighbor labels, ties broken toward the smallest
/// label, initial label = node id. Deterministic (integer vote counts, no
/// float accumulation) and therefore exactly reproducible by the naive
/// synchronous oracle. Usually stopped by max_supersteps: LP on graphs
/// with symmetric motifs can oscillate, which shows up as converged=false.
class LabelPropagationProgram : public VertexProgram {
 public:
  std::string Name() const override { return "lp"; }
  bool Undirected() const override { return true; }
  double Init(const VertexContext& ctx) const override;
  double Apply(const VertexContext& ctx, double current,
               std::span<const GatherEntry> gathered) const override;
};

struct ProgramOptions {
  double damping = 0.85;      // pagerank
  double tolerance = 1e-10;   // pagerank
  NodeId source = 0;          // sssp
};

/// Factory keyed by CLI name: "pagerank" | "cc" | "sssp" | "lp".
agl::Result<std::unique_ptr<VertexProgram>> MakeProgram(
    const std::string& name, const ProgramOptions& options);

}  // namespace agl::analytics
