#include "analytics/programs.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace agl::analytics {

PageRankProgram::PageRankProgram(double damping, double tolerance)
    : damping_(damping), tolerance_(tolerance) {}

double PageRankProgram::Init(const VertexContext& ctx) const {
  return 1.0 / static_cast<double>(ctx.num_vertices);
}

double PageRankProgram::Scatter(const VertexContext& ctx,
                                double value) const {
  return value / static_cast<double>(ctx.out_degree);
}

double PageRankProgram::Apply(const VertexContext& ctx, double /*current*/,
                              std::span<const GatherEntry> gathered) const {
  double sum = 0.0;
  for (const GatherEntry& e : gathered) sum += e.value;
  return (1.0 - damping_) / static_cast<double>(ctx.num_vertices) +
         damping_ * sum;
}

bool PageRankProgram::Changed(double previous, double next) const {
  return std::abs(next - previous) > tolerance_;
}

double ConnectedComponentsProgram::Init(const VertexContext& ctx) const {
  return static_cast<double>(ctx.id);
}

double ConnectedComponentsProgram::Apply(
    const VertexContext& ctx, double /*current*/,
    std::span<const GatherEntry> gathered) const {
  // Recompute from scratch: own id vs the latest neighbor labels. Labels
  // only ever decrease, so the fixpoint is the component-minimum id.
  double label = static_cast<double>(ctx.id);
  for (const GatherEntry& e : gathered) label = std::min(label, e.value);
  return label;
}

double SsspProgram::Init(const VertexContext& ctx) const {
  return ctx.id == source_ ? 0.0 : std::numeric_limits<double>::infinity();
}

double SsspProgram::Apply(const VertexContext& ctx, double /*current*/,
                          std::span<const GatherEntry> gathered) const {
  double dist =
      ctx.id == source_ ? 0.0 : std::numeric_limits<double>::infinity();
  for (const GatherEntry& e : gathered) {
    // +inf + w == +inf, so unrelaxed in-neighbors are harmless.
    dist = std::min(dist, e.value + static_cast<double>(e.weight));
  }
  return dist;
}

double LabelPropagationProgram::Init(const VertexContext& ctx) const {
  return static_cast<double>(ctx.id);
}

double LabelPropagationProgram::Apply(
    const VertexContext& /*ctx*/, double current,
    std::span<const GatherEntry> gathered) const {
  if (gathered.empty()) return current;
  // Integer vote counts in a label-ordered map: iterating in ascending
  // label order with a strict `>` comparison breaks ties toward the
  // smallest label, independent of gather order.
  std::map<double, int64_t> votes;
  for (const GatherEntry& e : gathered) ++votes[e.value];
  double best_label = current;
  int64_t best_count = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      best_count = count;
      best_label = label;
    }
  }
  return best_label;
}

agl::Result<std::unique_ptr<VertexProgram>> MakeProgram(
    const std::string& name, const ProgramOptions& options) {
  if (name == "pagerank") {
    if (options.damping <= 0.0 || options.damping >= 1.0) {
      return agl::Status::InvalidArgument(
          "pagerank damping must be in (0, 1)");
    }
    if (options.tolerance < 0.0) {
      return agl::Status::InvalidArgument("pagerank tolerance must be >= 0");
    }
    return std::unique_ptr<VertexProgram>(
        std::make_unique<PageRankProgram>(options.damping,
                                          options.tolerance));
  }
  if (name == "cc") {
    return std::unique_ptr<VertexProgram>(
        std::make_unique<ConnectedComponentsProgram>());
  }
  if (name == "sssp") {
    return std::unique_ptr<VertexProgram>(
        std::make_unique<SsspProgram>(options.source));
  }
  if (name == "lp") {
    return std::unique_ptr<VertexProgram>(
        std::make_unique<LabelPropagationProgram>());
  }
  return agl::Status::InvalidArgument(
      "unknown analytics program '" + name +
      "' (expected pagerank | cc | sssp | lp)");
}

}  // namespace agl::analytics
