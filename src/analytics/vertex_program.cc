#include "analytics/vertex_program.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/timer.h"
#include "flat/shard.h"
#include "io/codec.h"
#include "subgraph/graph_feature.h"
#include "tensor/tensor.h"

namespace agl::analytics {
namespace {

// Value tags for the records flowing through the superstep loop.
constexpr char kTagNode = 'N';     // NodeRecord (map output)
constexpr char kTagInEdge = 'I';   // EdgeRecord keyed by dst (gather side)
constexpr char kTagOutEdge = 'O';  // EdgeRecord keyed by src (scatter side)
constexpr char kTagState = 'S';    // VertexState (one per vertex per round)
constexpr char kTagMessage = 'M';  // scatter message keyed by destination

std::string Tagged(char tag, const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 1);
  out.push_back(tag);
  out.append(payload);
  return out;
}

/// The per-vertex record carried between supersteps: current value, the
/// gather cache (sorted by source id — canonical bytes), and the scatter
/// adjacency (sorted destination ids).
struct VertexState {
  NodeId id = 0;
  double value = 0.0;
  std::vector<GatherEntry> entries;
  std::vector<NodeId> out;

  std::string Serialize() const {
    io::BufferWriter w;
    w.PutVarint64(id);
    w.PutDouble(value);
    w.PutVarint64(entries.size());
    for (const GatherEntry& e : entries) {
      w.PutVarint64(e.src);
      w.PutFloat(e.weight);
      w.PutDouble(e.value);
      w.PutVarint64(e.received ? 1 : 0);
    }
    w.PutVarint64(out.size());
    for (NodeId dst : out) w.PutVarint64(dst);
    return w.Release();
  }

  static agl::Result<VertexState> Parse(const std::string& bytes) {
    io::BufferReader r(bytes);
    VertexState state;
    uint64_t id = 0;
    AGL_RETURN_IF_ERROR(r.GetVarint64(&id));
    state.id = id;
    AGL_RETURN_IF_ERROR(r.GetDouble(&state.value));
    uint64_t num_entries = 0;
    AGL_RETURN_IF_ERROR(r.GetVarint64(&num_entries));
    if (num_entries > r.remaining()) {
      return agl::Status::Corruption("vertex state entry count overflows");
    }
    state.entries.reserve(num_entries);
    for (uint64_t i = 0; i < num_entries; ++i) {
      GatherEntry e;
      uint64_t src = 0, received = 0;
      AGL_RETURN_IF_ERROR(r.GetVarint64(&src));
      AGL_RETURN_IF_ERROR(r.GetFloat(&e.weight));
      AGL_RETURN_IF_ERROR(r.GetDouble(&e.value));
      AGL_RETURN_IF_ERROR(r.GetVarint64(&received));
      e.src = src;
      e.received = received != 0;
      state.entries.push_back(e);
    }
    uint64_t num_out = 0;
    AGL_RETURN_IF_ERROR(r.GetVarint64(&num_out));
    if (num_out > r.remaining()) {
      return agl::Status::Corruption("vertex state out-degree overflows");
    }
    state.out.reserve(num_out);
    for (uint64_t i = 0; i < num_out; ++i) {
      uint64_t dst = 0;
      AGL_RETURN_IF_ERROR(r.GetVarint64(&dst));
      state.out.push_back(dst);
    }
    if (!r.AtEnd()) {
      return agl::Status::Corruption("trailing bytes in vertex state");
    }
    return state;
  }

  VertexContext Context(int64_t num_vertices) const {
    VertexContext ctx;
    ctx.id = id;
    ctx.in_degree = static_cast<int64_t>(entries.size());
    ctx.out_degree = static_cast<int64_t>(out.size());
    ctx.num_vertices = num_vertices;
    return ctx;
  }
};

std::string SerializeMessage(NodeId src, double value) {
  io::BufferWriter w;
  w.PutVarint64(src);
  w.PutDouble(value);
  return w.Release();
}

agl::Status ParseMessage(const std::string& bytes, NodeId* src,
                         double* value) {
  io::BufferReader r(bytes);
  uint64_t s = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&s));
  AGL_RETURN_IF_ERROR(r.GetDouble(value));
  if (!r.AtEnd()) {
    return agl::Status::Corruption("trailing bytes in scatter message");
  }
  *src = s;
  return agl::Status::OK();
}

struct RoundCtx {
  int round = 0;  // 0 = structural init round
  int64_t num_vertices = 0;
  const VertexProgram* program = nullptr;
};

/// Scatters `value` along every out-edge of `state` and re-emits the state.
void EmitStateAndScatter(const RoundCtx& ctx, const VertexState& state,
                         bool scatter, mr::Emitter* out) {
  if (scatter && !state.out.empty()) {
    const std::string msg = SerializeMessage(
        state.id,
        ctx.program->Scatter(state.Context(ctx.num_vertices), state.value));
    for (NodeId dst : state.out) {
      out->Emit(std::to_string(dst), Tagged(kTagMessage, msg));
    }
  }
  out->Emit(std::to_string(state.id), Tagged(kTagState, state.Serialize()));
}

/// Parses raw table rows and emits the gather/scatter stubs; runs once.
class AnalyticsMapper : public mr::Mapper {
 public:
  agl::Status Map(const mr::KeyValue& input, mr::Emitter* out) override {
    if (input.value.empty()) {
      return agl::Status::InvalidArgument("empty analytics input record");
    }
    const char tag = input.value[0];
    const std::string payload = input.value.substr(1);
    if (tag == kTagNode) {
      AGL_ASSIGN_OR_RETURN(NodeRecord node, NodeRecord::Parse(payload));
      out->Emit(std::to_string(node.id), Tagged(kTagNode, payload));
      return agl::Status::OK();
    }
    if (tag == kTagInEdge) {  // raw (normalized) edge row
      AGL_ASSIGN_OR_RETURN(EdgeRecord edge, EdgeRecord::Parse(payload));
      out->Emit(std::to_string(edge.dst), Tagged(kTagInEdge, payload));
      out->Emit(std::to_string(edge.src), Tagged(kTagOutEdge, payload));
      return agl::Status::OK();
    }
    return agl::Status::InvalidArgument("unknown analytics input tag");
  }
};

/// Round 0: joins each vertex's node row with its edge stubs into the
/// initial VertexState and scatters the initial value (every vertex is
/// active at the start).
class InitReducer : public mr::Reducer {
 public:
  explicit InitReducer(const RoundCtx& ctx) : ctx_(ctx) {}

  agl::Status Reduce(const std::string& key,
                     const std::vector<std::string>& values,
                     mr::Emitter* out) override {
    VertexState state;
    bool have_node = false;
    std::vector<std::pair<NodeId, float>> in_stubs;
    for (const std::string& v : values) {
      if (v.empty()) return agl::Status::Corruption("empty analytics value");
      const std::string payload = v.substr(1);
      switch (v[0]) {
        case kTagNode: {
          if (have_node) {
            return agl::Status::Corruption("duplicate node row for vertex " +
                                           key);
          }
          AGL_ASSIGN_OR_RETURN(NodeRecord node, NodeRecord::Parse(payload));
          state.id = node.id;
          have_node = true;
          break;
        }
        case kTagInEdge: {
          AGL_ASSIGN_OR_RETURN(EdgeRecord e, EdgeRecord::Parse(payload));
          in_stubs.emplace_back(e.src, e.weight);
          break;
        }
        case kTagOutEdge: {
          AGL_ASSIGN_OR_RETURN(EdgeRecord e, EdgeRecord::Parse(payload));
          state.out.push_back(e.dst);
          break;
        }
        default:
          return agl::Status::Corruption("unknown tag in analytics round 0");
      }
    }
    if (!have_node) {
      // Upfront endpoint validation makes this unreachable on clean input.
      return agl::Status::Corruption("edge stubs without a node row: " + key);
    }
    // Canonical adjacency: gather entries sorted by source (parallel edges
    // collapse to the minimum weight), scatter list sorted + deduped.
    std::sort(in_stubs.begin(), in_stubs.end());
    state.entries.reserve(in_stubs.size());
    for (const auto& [src, weight] : in_stubs) {
      if (!state.entries.empty() && state.entries.back().src == src) continue;
      GatherEntry e;
      e.src = src;
      e.weight = weight;
      state.entries.push_back(e);
    }
    std::sort(state.out.begin(), state.out.end());
    state.out.erase(std::unique(state.out.begin(), state.out.end()),
                    state.out.end());

    const VertexContext vctx = state.Context(ctx_.num_vertices);
    state.value = ctx_.program->Init(vctx);
    if (vctx.in_degree == 0) {
      // A vertex that can never receive a message would otherwise be stuck
      // at its Init value; give it its one (empty-gather) Apply now.
      state.value = ctx_.program->Apply(vctx, state.value, {});
    }
    EmitStateAndScatter(ctx_, state, /*scatter=*/true, out);
    return agl::Status::OK();
  }

 private:
  RoundCtx ctx_;
};

/// Rounds >= 1: one gather-apply-scatter superstep for the vertices that
/// received messages; quiet vertices pass their state through untouched.
class StepReducer : public mr::Reducer {
 public:
  explicit StepReducer(const RoundCtx& ctx) : ctx_(ctx) {}

  agl::Status Reduce(const std::string& key,
                     const std::vector<std::string>& values,
                     mr::Emitter* out) override {
    VertexState state;
    bool have_state = false;
    std::vector<std::pair<NodeId, double>> messages;
    for (const std::string& v : values) {
      if (v.empty()) return agl::Status::Corruption("empty analytics value");
      const std::string payload = v.substr(1);
      switch (v[0]) {
        case kTagState: {
          if (have_state) {
            return agl::Status::Corruption("duplicate state for vertex " +
                                           key);
          }
          AGL_ASSIGN_OR_RETURN(state, VertexState::Parse(payload));
          have_state = true;
          break;
        }
        case kTagMessage: {
          NodeId src = 0;
          double value = 0.0;
          AGL_RETURN_IF_ERROR(ParseMessage(payload, &src, &value));
          messages.emplace_back(src, value);
          break;
        }
        default:
          return agl::Status::Corruption("unknown tag in analytics round " +
                                         std::to_string(ctx_.round));
      }
    }
    if (!have_state) {
      return agl::Status::Corruption("messages without a state for vertex " +
                                     key);
    }
    if (messages.empty()) {
      EmitStateAndScatter(ctx_, state, /*scatter=*/false, out);
      return agl::Status::OK();
    }
    for (const auto& [src, value] : messages) {
      auto it = std::lower_bound(
          state.entries.begin(), state.entries.end(), src,
          [](const GatherEntry& e, NodeId s) { return e.src < s; });
      if (it == state.entries.end() || it->src != src) {
        return agl::Status::Corruption(
            "scatter message from non-neighbor " + std::to_string(src) +
            " to vertex " + key);
      }
      it->value = value;
      it->received = true;
    }
    // Every in-neighbor scatters in round 0, so a hole here means a lost
    // message — never valid under exact home-shard routing.
    for (const GatherEntry& e : state.entries) {
      if (!e.received) {
        return agl::Status::Corruption("gather cache of vertex " + key +
                                       " missing the scatter value of " +
                                       std::to_string(e.src));
      }
    }
    const VertexContext vctx = state.Context(ctx_.num_vertices);
    const double next =
        ctx_.program->Apply(vctx, state.value, state.entries);
    const bool changed = ctx_.program->Changed(state.value, next);
    state.value = next;
    EmitStateAndScatter(ctx_, state, changed, out);
    return agl::Status::OK();
  }

 private:
  RoundCtx ctx_;
};

/// Messages produced by the previous round, and the distinct vertices they
/// target — the active set of the next superstep.
struct ActiveSet {
  int64_t messages = 0;
  int64_t vertices = 0;
};

ActiveSet ScanLocalActive(const std::vector<mr::KeyValue>& records) {
  ActiveSet active;
  std::unordered_set<std::string> keys;
  for (const mr::KeyValue& kv : records) {
    if (!kv.value.empty() && kv.value[0] == kTagMessage) {
      ++active.messages;
      keys.insert(kv.key);
    }
  }
  active.vertices = static_cast<int64_t>(keys.size());
  return active;
}

std::string SerializeActive(const ActiveSet& active) {
  io::BufferWriter w;
  w.PutVarint64(active.messages);
  w.PutVarint64(active.vertices);
  return w.Release();
}

agl::Result<ActiveSet> ParseActive(const std::string& bytes) {
  io::BufferReader r(bytes);
  uint64_t messages = 0, vertices = 0;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&messages));
  AGL_RETURN_IF_ERROR(r.GetVarint64(&vertices));
  if (!r.AtEnd()) {
    return agl::Status::Corruption("trailing bytes in active-set payload");
  }
  ActiveSet active;
  active.messages = static_cast<int64_t>(messages);
  active.vertices = static_cast<int64_t>(vertices);
  return active;
}

/// The distributed convergence check: every shard scans its own records
/// (messages and their target vertices home uniquely, so the per-shard
/// counts partition the global ones exactly), AllGathers the counts under
/// a check-unique tag, and sums — giving every shard the same global
/// active set without a coordinator.
agl::Result<ActiveSet> GlobalActive(flat::Exchange* exchange, int shard,
                                    int check_index,
                                    const std::vector<mr::KeyValue>& records) {
  const ActiveSet local = ScanLocalActive(records);
  AGL_ASSIGN_OR_RETURN(
      std::vector<std::string> payloads,
      exchange->AllGather("act." + std::to_string(check_index), shard,
                          SerializeActive(local)));
  ActiveSet total;
  for (const std::string& payload : payloads) {
    AGL_ASSIGN_OR_RETURN(ActiveSet peer, ParseActive(payload));
    total.messages += peer.messages;
    total.vertices += peer.vertices;
  }
  return total;
}

}  // namespace

agl::Result<std::vector<EdgeRecord>> NormalizeEdgeTable(
    const VertexProgram& program, const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges) {
  if (nodes.empty()) {
    return agl::Status::InvalidArgument("analytics: empty node table");
  }
  std::unordered_set<NodeId> ids;
  ids.reserve(nodes.size());
  for (const NodeRecord& n : nodes) {
    if (!ids.insert(n.id).second) {
      return agl::Status::InvalidArgument(
          "analytics: duplicate node id " + std::to_string(n.id));
    }
  }
  std::vector<EdgeRecord> normalized;
  normalized.reserve(edges.size() * (program.Undirected() ? 2 : 1));
  for (const EdgeRecord& e : edges) {
    if (ids.count(e.src) == 0 || ids.count(e.dst) == 0) {
      return agl::Status::InvalidArgument(
          "analytics: edge " + std::to_string(e.src) + " -> " +
          std::to_string(e.dst) + " references a node missing from the "
          "node table");
    }
    EdgeRecord plain;
    plain.src = e.src;
    plain.dst = e.dst;
    plain.weight = e.weight;
    normalized.push_back(plain);
    if (program.Undirected() && e.src != e.dst) {
      std::swap(plain.src, plain.dst);
      normalized.push_back(plain);
    }
  }
  std::sort(normalized.begin(), normalized.end(),
            [](const EdgeRecord& a, const EdgeRecord& b) {
              return std::tie(a.src, a.dst, a.weight) <
                     std::tie(b.src, b.dst, b.weight);
            });
  normalized.erase(
      std::unique(normalized.begin(), normalized.end(),
                  [](const EdgeRecord& a, const EdgeRecord& b) {
                    return a.src == b.src && a.dst == b.dst;
                  }),
      normalized.end());
  return normalized;
}

agl::Status AnalyticsConfig::Validate() const {
  if (max_supersteps < 1) {
    return agl::Status::InvalidArgument(
        "AnalyticsConfig: max_supersteps must be >= 1");
  }
  if (num_shards < 1) {
    return agl::Status::InvalidArgument(
        "AnalyticsConfig: num_shards must be >= 1");
  }
  if (output_parts < 1) {
    return agl::Status::InvalidArgument(
        "AnalyticsConfig: output_parts must be >= 1");
  }
  return agl::Status::OK();
}

std::string AnalyticsResult::SerializeValues() const {
  io::BufferWriter w;
  w.PutVarint64(values.size());
  for (const auto& [id, value] : values) {
    w.PutVarint64(id);
    w.PutDouble(value);
  }
  return w.Release();
}

agl::Result<std::vector<mr::KeyValue>> RunAnalyticsShard(
    const AnalyticsConfig& config, const VertexProgram& program, int shard,
    const std::vector<NodeRecord>& shard_nodes,
    const std::vector<EdgeRecord>& shard_edges, int64_t num_vertices,
    flat::Exchange* exchange, AnalyticsStats* stats) {
  AnalyticsStats local;
  RoundCtx ctx;
  ctx.num_vertices = num_vertices;
  ctx.program = &program;

  const int num_shards = std::max(1, config.num_shards);
  flat::ShardRouter router{flat::ShardPlan(num_shards)};

  // Map phase over the shard's table slice; the home filter drops the
  // duplicate stubs of edges mapped on both endpoint shards.
  std::vector<mr::KeyValue> input;
  input.reserve(shard_nodes.size() + shard_edges.size());
  for (const NodeRecord& n : shard_nodes) {
    input.push_back({"", Tagged(kTagNode, n.Serialize())});
  }
  for (const EdgeRecord& e : shard_edges) {
    input.push_back({"", Tagged(kTagInEdge, e.Serialize())});
  }
  AGL_ASSIGN_OR_RETURN(
      std::vector<mr::KeyValue> records,
      mr::RunMapPhase(config.job, input,
                      [] { return std::make_unique<AnalyticsMapper>(); },
                      &local.job_stats));
  router.FilterToShard(shard, &records);

  // Init round: build states, scatter initial values.
  {
    const RoundCtx round_ctx = ctx;
    AGL_ASSIGN_OR_RETURN(
        records,
        mr::RunReducePhase(config.job, std::move(records),
                           [round_ctx] {
                             return std::make_unique<InitReducer>(round_ctx);
                           },
                           &local.job_stats));
    AGL_RETURN_IF_ERROR(exchange->Publish(0, shard, std::move(records)));
    AGL_ASSIGN_OR_RETURN(records, exchange->Collect(0, shard));
  }

  // Superstep loop with per-round active sets: a round with zero pending
  // messages globally means every vertex converged — stop generating
  // traffic. The check index (= supersteps so far) tags each AllGather
  // uniquely, and because every shard sums the same payloads, all shards
  // take the same branch every iteration.
  while (local.supersteps < config.max_supersteps) {
    AGL_ASSIGN_OR_RETURN(
        const ActiveSet active,
        GlobalActive(exchange, shard, local.supersteps, records));
    if (active.messages == 0) {
      local.converged = true;
      break;
    }
    local.messages_per_round.push_back(active.messages);
    local.active_per_round.push_back(active.vertices);
    ctx.round = local.supersteps + 1;
    const RoundCtx round_ctx = ctx;
    AGL_ASSIGN_OR_RETURN(
        records,
        mr::RunReducePhase(config.job, std::move(records),
                           [round_ctx] {
                             return std::make_unique<StepReducer>(round_ctx);
                           },
                           &local.job_stats));
    AGL_RETURN_IF_ERROR(
        exchange->Publish(ctx.round, shard, std::move(records)));
    AGL_ASSIGN_OR_RETURN(records, exchange->Collect(ctx.round, shard));
    local.supersteps++;
  }
  if (!local.converged) {
    // Cap hit on every shard (supersteps == max_supersteps), so the check
    // index is past all loop checks — still unique, still in lockstep.
    AGL_ASSIGN_OR_RETURN(
        const ActiveSet active,
        GlobalActive(exchange, shard, local.supersteps, records));
    local.converged = active.messages == 0;
  }
  if (stats != nullptr) *stats = std::move(local);
  return records;
}

agl::Result<std::vector<std::pair<NodeId, double>>> CollectFinalValues(
    const std::vector<std::vector<mr::KeyValue>>& shard_records,
    int64_t num_vertices) {
  // Messages a hit superstep cap left behind are dropped — they were never
  // applied anywhere.
  std::vector<std::pair<NodeId, double>> values;
  values.reserve(num_vertices);
  for (const auto& records : shard_records) {
    for (const mr::KeyValue& kv : records) {
      if (kv.value.empty() || kv.value[0] != kTagState) continue;
      AGL_ASSIGN_OR_RETURN(VertexState state,
                           VertexState::Parse(kv.value.substr(1)));
      values.emplace_back(state.id, state.value);
    }
  }
  if (static_cast<int64_t>(values.size()) != num_vertices) {
    return agl::Status::Corruption(
        "analytics: expected " + std::to_string(num_vertices) +
        " final vertex states, found " + std::to_string(values.size()));
  }
  std::sort(values.begin(), values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return values;
}

agl::Result<AnalyticsResult> RunVertexProgram(
    const AnalyticsConfig& config, const VertexProgram& program,
    const std::vector<NodeRecord>& nodes,
    const std::vector<EdgeRecord>& edges) {
  Stopwatch watch;
  if (config.max_supersteps < 0) {
    return agl::Status::InvalidArgument("analytics: max_supersteps < 0");
  }
  AGL_ASSIGN_OR_RETURN(std::vector<EdgeRecord> normalized,
                       NormalizeEdgeTable(program, nodes, edges));

  AnalyticsResult result;
  result.stats.num_vertices = static_cast<int64_t>(nodes.size());
  result.stats.num_gather_edges = static_cast<int64_t>(normalized.size());

  const int num_shards = std::max(1, config.num_shards);
  flat::ShardRouter router{flat::ShardPlan(num_shards)};
  const flat::ShardedTables tables =
      router.PartitionTables(nodes, normalized);

  flat::InMemoryExchange exchange{flat::ShardPlan(num_shards)};
  std::vector<std::vector<mr::KeyValue>> shard_records(num_shards);
  std::vector<AnalyticsStats> shard_stats(num_shards);
  AGL_RETURN_IF_ERROR(flat::ParallelOverShards(num_shards, [&](int s) {
    auto records = RunAnalyticsShard(config, program, s, tables.nodes[s],
                                     tables.edges[s],
                                     static_cast<int64_t>(nodes.size()),
                                     &exchange, &shard_stats[s]);
    if (!records.ok()) {
      // A failed shard never publishes again — release the peers parked
      // at the next barrier instead of deadlocking the pool.
      exchange.Abort(records.status());
      return records.status();
    }
    shard_records[s] = *std::move(records);
    return agl::Status::OK();
  }));

  AGL_ASSIGN_OR_RETURN(
      result.values,
      CollectFinalValues(shard_records,
                         static_cast<int64_t>(nodes.size())));

  // The superstep accounting is a pure function of the AllGather'd sums,
  // so every shard computed identical numbers — take shard 0's. Job
  // counters are per-shard work; accumulate them.
  result.stats.supersteps = shard_stats[0].supersteps;
  result.stats.converged = shard_stats[0].converged;
  result.stats.active_per_round = std::move(shard_stats[0].active_per_round);
  result.stats.messages_per_round =
      std::move(shard_stats[0].messages_per_round);
  for (const AnalyticsStats& ss : shard_stats) {
    result.stats.job_stats.Accumulate(ss.job_stats);
  }
  result.stats.exchange = exchange.stats();
  result.stats.elapsed_seconds = watch.Seconds();
  return result;
}

agl::Result<AnalyticsResult> RunVertexProgramToDfs(
    const AnalyticsConfig& config, const VertexProgram& program,
    const std::vector<NodeRecord>& nodes, const std::vector<EdgeRecord>& edges,
    mr::LocalDfs* dfs, const std::string& dataset) {
  AGL_ASSIGN_OR_RETURN(AnalyticsResult result,
                       RunVertexProgram(config, program, nodes, edges));
  // One single-node GraphFeature per vertex, id-sorted round-robin over the
  // part files: the dataset bytes depend only on the result, never on the
  // shard count, and any GraphFeature reader can consume them.
  std::vector<std::string> records;
  records.reserve(result.values.size());
  for (const auto& [id, value] : result.values) {
    subgraph::GraphFeature gf;
    gf.target_id = id;
    gf.target_index = 0;
    gf.label = -1;
    gf.node_ids = {id};
    gf.node_features =
        tensor::Tensor(1, 1, {static_cast<float>(value)});
    records.push_back(gf.Serialize());
  }
  AGL_RETURN_IF_ERROR(
      dfs->WriteDataset(dataset, records, std::max(1, config.output_parts)));
  return result;
}

agl::Result<std::vector<NodeRecord>> AugmentNodeTable(
    const std::vector<NodeRecord>& nodes, const AnalyticsResult& result) {
  std::vector<NodeRecord> augmented = nodes;
  // `result.values` is sorted by id; nodes may arrive in any order.
  for (NodeRecord& n : augmented) {
    auto it = std::lower_bound(
        result.values.begin(), result.values.end(), n.id,
        [](const std::pair<NodeId, double>& v, NodeId id) {
          return v.first < id;
        });
    if (it == result.values.end() || it->first != n.id) {
      return agl::Status::InvalidArgument(
          "AugmentNodeTable: no analytics value for node " +
          std::to_string(n.id));
    }
    n.features.push_back(static_cast<float>(it->second));
  }
  return augmented;
}

}  // namespace agl::analytics
