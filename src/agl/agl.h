// AGL public facade — the three well-encapsulated entry points of Figure 6:
//
//   GraphFlat    -n node_table -e edge_table -h hops -s sampling_strategy
//   GraphTrainer -m model_name -i input -t train_strategy -c dist_configs
//   GraphInfer   -m model -i input -c infer_configs
//
// Each call is one stage of the integrated pipeline; developers only write
// the model (gnn::ModelConfig picks one of the built-in GCN / GraphSAGE /
// GAT implementations, or extend gnn::GnnModel).

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analytics/vertex_program.h"
#include "common/status.h"
#include "flat/graphflat.h"
#include "infer/graphinfer.h"
#include "infer/original.h"
#include "mr/local_dfs.h"
#include "serve/inference_service.h"
#include "trainer/trainer.h"

namespace agl {

// ---------------------------------------------------------------------------
// The unified `Run` facade. Every pipeline stage is invoked the same way:
//
//   agl::Result<R> Run(const Config&, <stage inputs>...)
//
// where the overload is selected by the config type and `Config::Validate()`
// is always called up front — shape/range errors surface as
// kInvalidArgument before any work runs, for every entry point, uniformly.
// The agl_cli subcommands route through these.
// ---------------------------------------------------------------------------

/// GraphFlat: node/edge tables -> k-hop GraphFeatures on `dfs`/`dataset`.
agl::Result<flat::GraphFlatStats> Run(
    const flat::GraphFlatConfig& config,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table, mr::LocalDfs* dfs,
    const std::string& dataset);

/// GraphTrainer over materialized GraphFeatures.
agl::Result<trainer::TrainReport> Run(
    const trainer::TrainerConfig& config,
    std::span<const subgraph::GraphFeature> train,
    std::span<const subgraph::GraphFeature> val);

/// GraphInfer. Routes to the batched driver (cross-slice embedding cache)
/// whenever `config.batch_slices` > 1 or the cache is enabled, and to the
/// single-pass pipeline otherwise — the two produce bit-identical scores,
/// so the routing is purely an execution-strategy choice.
agl::Result<infer::InferResult> Run(
    const infer::InferConfig& config,
    const std::map<std::string, tensor::Tensor>& trained_state,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table);

/// The Table 5 "Original" baseline: GraphFlat + per-GraphFeature forwards.
agl::Result<infer::OriginalResult> Run(
    const infer::OriginalInferenceConfig& config,
    const std::map<std::string, tensor::Tensor>& trained_state,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table);

/// Vertex-program analytics (PageRank/CC/SSSP/LP) on the sharded MR loop.
agl::Result<analytics::AnalyticsResult> Run(
    const analytics::AnalyticsConfig& config,
    const analytics::VertexProgram& program,
    const std::vector<analytics::NodeRecord>& node_table,
    const std::vector<analytics::EdgeRecord>& edge_table);

/// Same, publishing the values as a GraphFeatures dataset on the DFS.
agl::Result<analytics::AnalyticsResult> Run(
    const analytics::AnalyticsConfig& config,
    const analytics::VertexProgram& program,
    const std::vector<analytics::NodeRecord>& node_table,
    const std::vector<analytics::EdgeRecord>& edge_table, mr::LocalDfs* dfs,
    const std::string& dataset);

/// The always-on inference service: admission + coalescing over a
/// persistent cross-process embedding store (serve/inference_service.h).
agl::Result<std::unique_ptr<serve::InferenceService>> Run(
    const serve::ServeConfig& config,
    const std::map<std::string, tensor::Tensor>& trained_state,
    std::vector<flat::NodeRecord> node_table,
    std::vector<flat::EdgeRecord> edge_table, mr::LocalDfs* dfs);

// ---------------------------------------------------------------------------
// Named aliases for the Figure 6 stage spellings (kept for readability at
// call sites that predate the facade; each simply forwards to Run).
// ---------------------------------------------------------------------------

/// Stage 1 — GraphFlat: turn raw node/edge tables into k-hop
/// GraphFeatures stored on the DFS under `dataset`.
agl::Result<flat::GraphFlatStats> GraphFlat(
    const flat::GraphFlatConfig& config,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table, mr::LocalDfs* dfs,
    const std::string& dataset);

/// Loads a GraphFeature dataset back from the DFS.
agl::Result<std::vector<subgraph::GraphFeature>> LoadGraphFeatures(
    const mr::LocalDfs& dfs, const std::string& dataset);

/// Stage 2 — GraphTrainer: distributed training over GraphFeatures.
agl::Result<trainer::TrainReport> GraphTrainer(
    const trainer::TrainerConfig& config,
    std::span<const subgraph::GraphFeature> train,
    std::span<const subgraph::GraphFeature> val);

/// Stage 2, streaming: trains straight off a DFS feature dataset without
/// materializing it (each worker's pipeline reader stage deserializes its
/// share of the part files on the fly; kAsync/kSsp only).
agl::Result<trainer::TrainReport> GraphTrainerStreaming(
    const trainer::TrainerConfig& config, const mr::LocalDfs& dfs,
    const std::string& dataset,
    std::span<const subgraph::GraphFeature> val);

/// Stage 3 — GraphInfer: distributed sliced inference over the full graph.
agl::Result<infer::InferResult> GraphInfer(
    const infer::InferConfig& config,
    const std::map<std::string, tensor::Tensor>& trained_state,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table);

/// Stage 3, batched: runs the targets in `config.batch_slices` slices that
/// share a cross-slice segment-embedding cache
/// (`config.cache_budget_bytes`), so overlapping neighborhood embeddings
/// are evaluated once instead of once per slice. Bit-identical scores to
/// per-slice GraphInfer calls.
agl::Result<infer::InferResult> GraphInferBatched(
    const infer::InferConfig& config,
    const std::map<std::string, tensor::Tensor>& trained_state,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table);

/// Serializes a trained state dict for storage on the DFS.
std::string SerializeState(const std::map<std::string, tensor::Tensor>& state);
agl::Result<std::map<std::string, tensor::Tensor>> ParseState(
    const std::string& bytes);

}  // namespace agl
