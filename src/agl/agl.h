// AGL public facade — the three well-encapsulated entry points of Figure 6:
//
//   GraphFlat    -n node_table -e edge_table -h hops -s sampling_strategy
//   GraphTrainer -m model_name -i input -t train_strategy -c dist_configs
//   GraphInfer   -m model -i input -c infer_configs
//
// Each call is one stage of the integrated pipeline; developers only write
// the model (gnn::ModelConfig picks one of the built-in GCN / GraphSAGE /
// GAT implementations, or extend gnn::GnnModel).

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "flat/graphflat.h"
#include "infer/graphinfer.h"
#include "infer/original.h"
#include "mr/local_dfs.h"
#include "trainer/trainer.h"

namespace agl {

/// Stage 1 — GraphFlat: turn raw node/edge tables into k-hop
/// GraphFeatures stored on the DFS under `dataset`.
agl::Result<flat::GraphFlatStats> GraphFlat(
    const flat::GraphFlatConfig& config,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table, mr::LocalDfs* dfs,
    const std::string& dataset);

/// Loads a GraphFeature dataset back from the DFS.
agl::Result<std::vector<subgraph::GraphFeature>> LoadGraphFeatures(
    const mr::LocalDfs& dfs, const std::string& dataset);

/// Stage 2 — GraphTrainer: distributed training over GraphFeatures.
agl::Result<trainer::TrainReport> GraphTrainer(
    const trainer::TrainerConfig& config,
    std::span<const subgraph::GraphFeature> train,
    std::span<const subgraph::GraphFeature> val);

/// Stage 2, streaming: trains straight off a DFS feature dataset without
/// materializing it (each worker's pipeline reader stage deserializes its
/// share of the part files on the fly; kAsync/kSsp only).
agl::Result<trainer::TrainReport> GraphTrainerStreaming(
    const trainer::TrainerConfig& config, const mr::LocalDfs& dfs,
    const std::string& dataset,
    std::span<const subgraph::GraphFeature> val);

/// Stage 3 — GraphInfer: distributed sliced inference over the full graph.
agl::Result<infer::InferResult> GraphInfer(
    const infer::InferConfig& config,
    const std::map<std::string, tensor::Tensor>& trained_state,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table);

/// Stage 3, batched: runs the targets in `config.batch_slices` slices that
/// share a cross-slice segment-embedding cache
/// (`config.cache_budget_bytes`), so overlapping neighborhood embeddings
/// are evaluated once instead of once per slice. Bit-identical scores to
/// per-slice GraphInfer calls.
agl::Result<infer::InferResult> GraphInferBatched(
    const infer::InferConfig& config,
    const std::map<std::string, tensor::Tensor>& trained_state,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table);

/// Serializes a trained state dict for storage on the DFS.
std::string SerializeState(const std::map<std::string, tensor::Tensor>& state);
agl::Result<std::map<std::string, tensor::Tensor>> ParseState(
    const std::string& bytes);

}  // namespace agl
