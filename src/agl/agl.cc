#include "agl/agl.h"

#include "nn/state_io.h"
#include "trainer/feature_source.h"

namespace agl {

agl::Result<flat::GraphFlatStats> Run(
    const flat::GraphFlatConfig& config,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table, mr::LocalDfs* dfs,
    const std::string& dataset) {
  AGL_RETURN_IF_ERROR(config.Validate());
  return flat::RunGraphFlat(config, node_table, edge_table, dfs, dataset);
}

agl::Result<trainer::TrainReport> Run(
    const trainer::TrainerConfig& config,
    std::span<const subgraph::GraphFeature> train,
    std::span<const subgraph::GraphFeature> val) {
  AGL_RETURN_IF_ERROR(config.Validate());
  trainer::GraphTrainer t(config);
  return t.Train(train, val);
}

agl::Result<infer::InferResult> Run(
    const infer::InferConfig& config,
    const std::map<std::string, tensor::Tensor>& trained_state,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table) {
  AGL_RETURN_IF_ERROR(config.Validate());
  if (config.batch_slices > 1 || config.cache_budget_bytes != 0) {
    return infer::RunGraphInferBatched(config, trained_state, node_table,
                                       edge_table);
  }
  return infer::RunGraphInfer(config, trained_state, node_table, edge_table);
}

agl::Result<infer::OriginalResult> Run(
    const infer::OriginalInferenceConfig& config,
    const std::map<std::string, tensor::Tensor>& trained_state,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table) {
  AGL_RETURN_IF_ERROR(config.Validate());
  return infer::RunOriginalInference(config, trained_state, node_table,
                                     edge_table);
}

agl::Result<analytics::AnalyticsResult> Run(
    const analytics::AnalyticsConfig& config,
    const analytics::VertexProgram& program,
    const std::vector<analytics::NodeRecord>& node_table,
    const std::vector<analytics::EdgeRecord>& edge_table) {
  AGL_RETURN_IF_ERROR(config.Validate());
  return analytics::RunVertexProgram(config, program, node_table,
                                     edge_table);
}

agl::Result<analytics::AnalyticsResult> Run(
    const analytics::AnalyticsConfig& config,
    const analytics::VertexProgram& program,
    const std::vector<analytics::NodeRecord>& node_table,
    const std::vector<analytics::EdgeRecord>& edge_table, mr::LocalDfs* dfs,
    const std::string& dataset) {
  AGL_RETURN_IF_ERROR(config.Validate());
  return analytics::RunVertexProgramToDfs(config, program, node_table,
                                          edge_table, dfs, dataset);
}

agl::Result<std::unique_ptr<serve::InferenceService>> Run(
    const serve::ServeConfig& config,
    const std::map<std::string, tensor::Tensor>& trained_state,
    std::vector<flat::NodeRecord> node_table,
    std::vector<flat::EdgeRecord> edge_table, mr::LocalDfs* dfs) {
  // Start() validates (it also owns the store-open sequencing).
  return serve::InferenceService::Start(config, trained_state,
                                        std::move(node_table),
                                        std::move(edge_table), dfs);
}

agl::Result<flat::GraphFlatStats> GraphFlat(
    const flat::GraphFlatConfig& config,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table, mr::LocalDfs* dfs,
    const std::string& dataset) {
  return Run(config, node_table, edge_table, dfs, dataset);
}

agl::Result<std::vector<subgraph::GraphFeature>> LoadGraphFeatures(
    const mr::LocalDfs& dfs, const std::string& dataset) {
  // DfsFeatureSource resolves merged datasets and unmerged shard families
  // alike, so every consumer of this facade reads sharded GraphFlat output
  // transparently.
  AGL_ASSIGN_OR_RETURN(trainer::DfsFeatureSource source,
                       trainer::DfsFeatureSource::Open(dfs, dataset));
  return source.ReadAll();
}

agl::Result<trainer::TrainReport> GraphTrainer(
    const trainer::TrainerConfig& config,
    std::span<const subgraph::GraphFeature> train,
    std::span<const subgraph::GraphFeature> val) {
  return Run(config, train, val);
}

agl::Result<trainer::TrainReport> GraphTrainerStreaming(
    const trainer::TrainerConfig& config, const mr::LocalDfs& dfs,
    const std::string& dataset,
    std::span<const subgraph::GraphFeature> val) {
  AGL_RETURN_IF_ERROR(config.Validate());
  AGL_ASSIGN_OR_RETURN(trainer::DfsFeatureSource source,
                       trainer::DfsFeatureSource::Open(dfs, dataset));
  trainer::GraphTrainer t(config);
  return t.TrainStreaming(source, val);
}

agl::Result<infer::InferResult> GraphInfer(
    const infer::InferConfig& config,
    const std::map<std::string, tensor::Tensor>& trained_state,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table) {
  // Pinned to the single-pass pipeline (the batched/unbatched equivalence
  // harness compares the two spellings); prefer Run for strategy routing.
  AGL_RETURN_IF_ERROR(config.Validate());
  return infer::RunGraphInfer(config, trained_state, node_table, edge_table);
}

agl::Result<infer::InferResult> GraphInferBatched(
    const infer::InferConfig& config,
    const std::map<std::string, tensor::Tensor>& trained_state,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table) {
  AGL_RETURN_IF_ERROR(config.Validate());
  return infer::RunGraphInferBatched(config, trained_state, node_table,
                                     edge_table);
}

std::string SerializeState(
    const std::map<std::string, tensor::Tensor>& state) {
  return nn::SerializeStateDict(state);
}

agl::Result<std::map<std::string, tensor::Tensor>> ParseState(
    const std::string& bytes) {
  return nn::ParseStateDict(bytes);
}

}  // namespace agl
