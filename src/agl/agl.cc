#include "agl/agl.h"

#include "nn/state_io.h"
#include "trainer/feature_source.h"

namespace agl {

agl::Result<flat::GraphFlatStats> GraphFlat(
    const flat::GraphFlatConfig& config,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table, mr::LocalDfs* dfs,
    const std::string& dataset) {
  return flat::RunGraphFlat(config, node_table, edge_table, dfs, dataset);
}

agl::Result<std::vector<subgraph::GraphFeature>> LoadGraphFeatures(
    const mr::LocalDfs& dfs, const std::string& dataset) {
  // DfsFeatureSource resolves merged datasets and unmerged shard families
  // alike, so every consumer of this facade reads sharded GraphFlat output
  // transparently.
  AGL_ASSIGN_OR_RETURN(trainer::DfsFeatureSource source,
                       trainer::DfsFeatureSource::Open(dfs, dataset));
  return source.ReadAll();
}

agl::Result<trainer::TrainReport> GraphTrainer(
    const trainer::TrainerConfig& config,
    std::span<const subgraph::GraphFeature> train,
    std::span<const subgraph::GraphFeature> val) {
  trainer::GraphTrainer t(config);
  return t.Train(train, val);
}

agl::Result<trainer::TrainReport> GraphTrainerStreaming(
    const trainer::TrainerConfig& config, const mr::LocalDfs& dfs,
    const std::string& dataset,
    std::span<const subgraph::GraphFeature> val) {
  AGL_ASSIGN_OR_RETURN(trainer::DfsFeatureSource source,
                       trainer::DfsFeatureSource::Open(dfs, dataset));
  trainer::GraphTrainer t(config);
  return t.TrainStreaming(source, val);
}

agl::Result<infer::InferResult> GraphInfer(
    const infer::InferConfig& config,
    const std::map<std::string, tensor::Tensor>& trained_state,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table) {
  return infer::RunGraphInfer(config, trained_state, node_table, edge_table);
}

agl::Result<infer::InferResult> GraphInferBatched(
    const infer::InferConfig& config,
    const std::map<std::string, tensor::Tensor>& trained_state,
    const std::vector<flat::NodeRecord>& node_table,
    const std::vector<flat::EdgeRecord>& edge_table) {
  return infer::RunGraphInferBatched(config, trained_state, node_table,
                                     edge_table);
}

std::string SerializeState(
    const std::map<std::string, tensor::Tensor>& state) {
  return nn::SerializeStateDict(state);
}

agl::Result<std::map<std::string, tensor::Tensor>> ParseState(
    const std::string& bytes) {
  return nn::ParseStateDict(bytes);
}

}  // namespace agl
