// CSR sparse matrix for adjacency structure, plus the aggregation kernels
// (SpMM) used by every GNN layer. Aggregation honours the paper's edge
// partitioning: rows are split across threads by non-zero count so that each
// destination node is owned by exactly one thread (conflict-free).

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/edge_partition.h"
#include "tensor/tensor.h"

namespace agl::tensor {

/// One COO entry: edge src -> dst stored at (row=dst, col=src), matching the
/// paper's convention that A[v,u] > 0 means edge u -> v (u is an in-edge
/// neighbour of v).
struct CooEntry {
  int64_t row = 0;
  int64_t col = 0;
  float value = 1.f;
};

/// Immutable CSR matrix. Rows are destinations, columns are sources.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds from unsorted COO entries (duplicates are summed).
  static SparseMatrix FromCoo(int64_t rows, int64_t cols,
                              std::vector<CooEntry> entries);

  /// Builds directly from CSR arrays the caller guarantees are valid
  /// (row_ptr monotone of length rows+1, col_idx sorted within each row,
  /// no duplicates). No sorting — O(nnz). Used by hot per-batch paths
  /// (pruning, self-loop insertion).
  static SparseMatrix FromCsr(int64_t rows, int64_t cols,
                              std::vector<int64_t> row_ptr,
                              std::vector<int64_t> col_idx,
                              std::vector<float> values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }

  int64_t RowNnz(int64_t r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  /// Transpose copy (swaps the roles of src and dst).
  SparseMatrix Transposed() const;

  /// Returns a copy whose rows are L1-normalized (mean aggregation).
  SparseMatrix RowNormalized() const;

  /// Returns D_out^{-1/2} (this) D_in^{-1/2} — the symmetric GCN
  /// normalization generalized to directed adjacency.
  SparseMatrix GcnNormalized() const;

  /// Returns a copy with self-loop entries (r, r, 1.0) added for every row
  /// (requires rows == cols).
  SparseMatrix WithSelfLoops() const;

  bool operator==(const SparseMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_ &&
           values_ == other.values_;
  }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;  // length rows_+1
  std::vector<int64_t> col_idx_;  // length nnz, sorted within each row
  std::vector<float> values_;    // length nnz
};

/// Controls the aggregation kernels; `num_threads <= 1` disables the edge
/// partitioning optimization (the AGL_base configuration of Table 4).
struct SpmmOptions {
  int num_threads = 1;
};

/// out = A @ dense, where A is [n x m] CSR and dense is [m x f].
/// Each output row is produced by exactly one thread (edge partitioning).
Tensor Spmm(const SparseMatrix& a, const Tensor& dense,
            const SpmmOptions& opts = {});

}  // namespace agl::tensor
