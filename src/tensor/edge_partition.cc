#include "tensor/edge_partition.h"

#include <algorithm>

#include "common/logging.h"

namespace agl::tensor {

std::vector<RowSpan> PartitionRowsByNnz(const std::vector<int64_t>& row_ptr,
                                        int64_t num_rows, int num_parts) {
  AGL_CHECK_EQ(static_cast<int64_t>(row_ptr.size()), num_rows + 1);
  AGL_CHECK_GE(num_parts, 1);
  std::vector<RowSpan> spans;
  if (num_rows == 0) return spans;

  // Greedy cuts with two refinements over a fixed total/num_parts target:
  //   1. The target is recomputed per span from the *remaining* nnz and
  //      parts, so hub rows clustered near the end raise later targets
  //      instead of silently overloading the final remainder span.
  //   2. The row that crosses the target joins the span only when the
  //      overshoot is smaller than the undershoot of cutting before it —
  //      a hub row encountered mid-span starts a fresh span of its own.
  // Empty rows ride along with their neighbours.
  int64_t row = 0;
  int parts_left = num_parts;
  while (row < num_rows) {
    if (parts_left <= 1) {
      spans.push_back({row, num_rows});
      break;
    }
    const int64_t span_start = row;
    const int64_t nnz_start = row_ptr[row];
    const int64_t remaining = row_ptr[num_rows] - nnz_start;
    const int64_t target =
        std::max<int64_t>(1, (remaining + parts_left - 1) / parts_left);
    while (row < num_rows) {
      const int64_t with_row = row_ptr[row + 1] - nnz_start;
      if (with_row >= target) {
        const int64_t without_row = row_ptr[row] - nnz_start;
        if (row == span_start || with_row - target <= target - without_row) {
          ++row;  // crossing row belongs here (or the span would be empty)
        }
        break;
      }
      ++row;
    }
    spans.push_back({span_start, row});
    --parts_left;
  }
  return spans;
}

}  // namespace agl::tensor
