#include "tensor/edge_partition.h"

#include <algorithm>

#include "common/logging.h"

namespace agl::tensor {

std::vector<RowSpan> PartitionRowsByNnz(const std::vector<int64_t>& row_ptr,
                                        int64_t num_rows, int num_parts) {
  AGL_CHECK_EQ(static_cast<int64_t>(row_ptr.size()), num_rows + 1);
  AGL_CHECK_GE(num_parts, 1);
  std::vector<RowSpan> spans;
  if (num_rows == 0) return spans;

  const int64_t total_nnz = row_ptr[num_rows];
  // Aim each span at total/num_parts nnz; advance the cut greedily. Empty
  // rows ride along with their neighbours.
  const int64_t target = std::max<int64_t>(1, total_nnz / num_parts);
  int64_t row = 0;
  while (row < num_rows && static_cast<int>(spans.size()) < num_parts - 1) {
    const int64_t span_start = row;
    const int64_t nnz_start = row_ptr[row];
    while (row < num_rows && row_ptr[row + 1] - nnz_start < target) ++row;
    if (row < num_rows) ++row;  // include the row that crossed the target
    spans.push_back({span_start, row});
  }
  if (row < num_rows) spans.push_back({row, num_rows});
  return spans;
}

}  // namespace agl::tensor
