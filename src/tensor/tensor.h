// Dense row-major float32 matrix — the numeric workhorse under the autograd
// tape and the GNN layers. Deliberately 2-D only: every quantity in the AGL
// computation (features, embeddings, logits) is a [rows x cols] matrix; a
// vector is a single-column or single-row matrix.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace agl::tensor {

/// Dense row-major float matrix.
class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialized [rows x cols].
  Tensor(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), 0.f) {
    AGL_CHECK_GE(rows, 0);
    AGL_CHECK_GE(cols, 0);
  }
  /// Takes ownership of `data` (size must equal rows*cols).
  Tensor(int64_t rows, int64_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    AGL_CHECK_EQ(static_cast<int64_t>(data_.size()), rows * cols);
  }

  static Tensor Zeros(int64_t rows, int64_t cols) { return Tensor(rows, cols); }
  static Tensor Full(int64_t rows, int64_t cols, float value);
  static Tensor Eye(int64_t n);
  /// I.i.d. uniform in [lo, hi).
  static Tensor RandomUniform(int64_t rows, int64_t cols, float lo, float hi,
                              Rng* rng);
  /// I.i.d. normal.
  static Tensor RandomNormal(int64_t rows, int64_t cols, float mean,
                             float stddev, Rng* rng);
  /// Glorot/Xavier uniform initialization (fan_in = rows, fan_out = cols).
  static Tensor GlorotUniform(int64_t rows, int64_t cols, Rng* rng);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(int64_t r) { return data_.data() + r * cols_; }
  const float* row(int64_t r) const { return data_.data() + r * cols_; }

  float& at(int64_t r, int64_t c) { return data_[r * cols_ + c]; }
  float at(int64_t r, int64_t c) const { return data_[r * cols_ + c]; }

  /// Sets every element to `value`.
  void Fill(float value);
  /// Elementwise accumulate: this += other (shapes must match).
  void Add(const Tensor& other);
  /// this += alpha * other.
  void Axpy(float alpha, const Tensor& other);
  /// Multiplies every element by `alpha`.
  void Scale(float alpha);

  /// Returns a copy of row `r` as a [1 x cols] tensor.
  Tensor Row(int64_t r) const;
  /// Returns rows [begin, end) as a new tensor.
  Tensor RowSlice(int64_t begin, int64_t end) const;
  /// Gathers `indices` rows into a new [indices.size() x cols] tensor.
  Tensor GatherRows(const std::vector<int64_t>& indices) const;

  /// Sum of all elements.
  double Sum() const;
  /// Squared Frobenius norm.
  double SquaredNorm() const;
  /// Max absolute element.
  float AbsMax() const;

  /// True when shapes match and all elements differ by at most `tol`.
  bool AllClose(const Tensor& other, float tol = 1e-5f) const;

  std::string ShapeString() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a @ b. Parallelized over rows of `a` with the global thread pool.
Tensor MatMul(const Tensor& a, const Tensor& b);
/// out = a^T @ b.
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// out = a @ b^T.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
/// Transpose copy.
Tensor Transpose(const Tensor& a);

/// Elementwise lambdas (shape-checked).
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
/// Adds a [1 x cols] bias row to every row of `a`.
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);
/// Applies `fn` elementwise.
Tensor Map(const Tensor& a, const std::function<float(float)>& fn);

/// Row-wise softmax.
Tensor RowSoftmax(const Tensor& a);
/// Row-wise log-softmax (numerically stable).
Tensor RowLogSoftmax(const Tensor& a);
/// Per-row sum as [rows x 1].
Tensor RowSum(const Tensor& a);
/// Per-column mean as [1 x cols].
Tensor ColMean(const Tensor& a);

}  // namespace agl::tensor
