// Scalar backend: the always-compiled baseline every other backend must
// match within tolerance (tests/kernel_test.cpp). Plain loops, no
// intrinsics — also what AGL_SIMD=OFF builds ship.

#include <cmath>
#include <limits>

#include "tensor/kernels/blocked_loops.h"
#include "tensor/kernels/kernels.h"

namespace agl::tensor::kernels {
namespace {

void AxpyRow(float* dst, const float* src, float alpha, int64_t n) {
  for (int64_t j = 0; j < n; ++j) dst[j] += alpha * src[j];
}

float Dot(const float* a, const float* b, int64_t n) {
  float acc = 0.f;
  for (int64_t j = 0; j < n; ++j) acc += a[j] * b[j];
  return acc;
}

void ScaledAccumulate(float* dst, const float* const* srcs, const float* w,
                      int64_t n) {
  const float* s0 = srcs[0];
  const float* s1 = srcs[1];
  const float* s2 = srcs[2];
  const float* s3 = srcs[3];
  const float w0 = w[0], w1 = w[1], w2 = w[2], w3 = w[3];
  for (int64_t j = 0; j < n; ++j) {
    dst[j] += w0 * s0[j] + w1 * s1[j] + w2 * s2[j] + w3 * s3[j];
  }
}

void RowSoftmax(float* x, int64_t n) {
  if (n == 0) return;
  float mx = -std::numeric_limits<float>::infinity();
  for (int64_t j = 0; j < n; ++j) mx = std::max(mx, x[j]);
  float denom = 0.f;
  for (int64_t j = 0; j < n; ++j) {
    x[j] = std::exp(x[j] - mx);
    denom += x[j];
  }
  const float inv = 1.f / denom;
  for (int64_t j = 0; j < n; ++j) x[j] *= inv;
}

void SpmmRow(float* out_row, const float* dense, const int64_t* cols,
             const float* w, int64_t count, int64_t f) {
  for (int64_t e = 0; e < count; ++e) {
    if (e + 8 < count) PrefetchHint(dense + cols[e + 8] * f);
    AxpyRow(out_row, dense + cols[e] * f, w[e], f);
  }
}

void GatEdgeSoftmax(const int64_t* cols, int64_t count, float al_i,
                    const float* ar, float slope, float* alpha,
                    float* dz_factor) {
  for (int64_t e = 0; e < count; ++e) {
    const float z = al_i + ar[cols[e]];
    dz_factor[e] = z > 0.f ? 1.f : slope;
    alpha[e] = z > 0.f ? z : slope * z;
  }
  RowSoftmax(alpha, count);
}

void AdamUpdate(float* value, const float* grad, float* m, float* v,
                const AdamConsts& c, int64_t n) {
  for (int64_t j = 0; j < n; ++j) {
    float g = grad[j];
    if (c.weight_decay > 0.f) g += c.weight_decay * value[j];
    m[j] = c.beta1 * m[j] + (1.f - c.beta1) * g;
    v[j] = c.beta2 * v[j] + (1.f - c.beta2) * g * g;
    const float mhat = m[j] * c.inv_bias1;
    const float vhat = v[j] * c.inv_bias2;
    value[j] -= c.lr * mhat / (std::sqrt(vhat) + c.eps);
  }
}

}  // namespace

const KernelTable& ScalarKernels() {
  static const KernelTable table = {
      "scalar",
      AxpyRow,
      Dot,
      ScaledAccumulate,
      RowSoftmax,
      detail::GemmBlocked<AxpyRow, ScaledAccumulate>,
      detail::GemmTransABlocked<AxpyRow, ScaledAccumulate>,
      detail::GemmTransBBlocked<Dot>,
      SpmmRow,
      GatEdgeSoftmax,
      AdamUpdate,
  };
  return table;
}

}  // namespace agl::tensor::kernels
