// SIMD-dispatched tensor kernel layer: the narrow, C-ABI-style contract
// between the algebra in tensor/ & autograd/ and the machine. Every hot
// loop (SpMM aggregation, the MatMul family, edge softmax, optimizer
// updates) funnels through one of these entry points, so a backend is a
// single table of function pointers and the rest of the system never
// mentions an ISA.
//
// Backends:
//   scalar — plain C++, always compiled, the golden baseline the parity
//            tests compare against.
//   avx2   — AVX2 + FMA (x86-64), compiled when AGL_SIMD=ON and the
//            compiler targets x86; chosen at runtime only if the CPU
//            reports both features.
//
// Selection happens once, at first use, via ActiveKernels(). The env var
// AGL_KERNEL_BACKEND (= "scalar" | "avx2" | "auto") overrides the choice;
// an unavailable request logs a warning and degrades to scalar so a
// pinned config never crashes on older hardware.

#pragma once

#include <cstdint>

namespace agl::tensor::kernels {

/// Portable best-effort cache prefetch hint; a no-op on toolchains
/// without __builtin_prefetch (the same ones the build keeps scalar-only).
inline void PrefetchHint(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}

/// Number of source rows a scaled_accumulate call folds into `dst` at once.
/// Callers peel edges/columns in groups of this size and finish the tail
/// with axpy_row.
inline constexpr int kAccumulateWidth = 4;

/// Scalar constants for one fused Adam update over a parameter buffer.
/// `inv_bias1/2` are the precomputed 1/(1-beta^t) bias corrections.
struct AdamConsts {
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float lr = 1e-3f;
  float eps = 1e-8f;
  float weight_decay = 0.f;
  float inv_bias1 = 1.f;
  float inv_bias2 = 1.f;
};

/// One backend. All row pointers are contiguous float spans; `dst`/`out`
/// never aliases a source operand. Matrix kernels use += semantics into a
/// caller-zeroed output and take a row range so callers own threading —
/// the kernels themselves never spawn work.
struct KernelTable {
  const char* name;

  /// dst[0..n) += alpha * src[0..n).
  void (*axpy_row)(float* dst, const float* src, float alpha, int64_t n);

  /// Returns sum_i a[i] * b[i].
  float (*dot)(const float* a, const float* b, int64_t n);

  /// Register-blocked 4-way accumulate:
  /// dst[j] += w[0]*srcs[0][j] + w[1]*srcs[1][j] + w[2]*srcs[2][j] +
  ///           w[3]*srcs[3][j], for j in [0, n). Exactly kAccumulateWidth
  /// sources; the output row is loaded and stored once per vector lane
  /// instead of once per source.
  void (*scaled_accumulate)(float* dst, const float* const* srcs,
                            const float* w, int64_t n);

  /// In-place numerically-stable softmax over x[0..n): fused
  /// max / exp / normalize passes. n == 0 is a no-op.
  void (*row_softmax)(float* x, int64_t n);

  /// out[r, 0..m) += sum_p a[r, p] * b[p, 0..m) for r in [row_begin,
  /// row_end). a is [rows x k], b is [k x m], out is [rows x m], all
  /// row-major. Cache-blocked over p so the active b tile stays hot.
  void (*gemm)(const float* a, const float* b, float* out, int64_t row_begin,
               int64_t row_end, int64_t k, int64_t m);

  /// out[p, 0..m) += sum_{i in [i_begin, i_end)} a[i, p] * b[i, 0..m).
  /// a is [n x k], b is [n x m], out is [k x m]. The i range lets callers
  /// run disjoint chunks into private partial outputs and reduce.
  void (*gemm_trans_a)(const float* a, const float* b, float* out,
                       int64_t i_begin, int64_t i_end, int64_t k, int64_t m);

  /// out[r, j] += sum_p a[r, p] * b[j, p] for r in [row_begin, row_end),
  /// j in [0, m). a is [rows x k], b is [m x k], out is [rows x m].
  /// Tiled over j so the active b tile is reused across rows.
  void (*gemm_trans_b)(const float* a, const float* b, float* out,
                       int64_t row_begin, int64_t row_end, int64_t k,
                       int64_t m);

  /// Weighted gather-accumulate for one SpMM output row:
  /// out_row[0..f) += sum_e w[e] * dense[cols[e] * f .. +f). The feature
  /// dimension is processed in register-resident chunks held across ALL
  /// edges, so the output row is loaded and stored once per chunk instead
  /// of once per edge group, and upcoming gathered rows are prefetched.
  void (*spmm_row)(float* out_row, const float* dense, const int64_t* cols,
                   const float* w, int64_t count, int64_t f);

  /// Fused GAT edge softmax for one destination row with `count` in-edges:
  /// scores z_e = al_i + ar[cols[e]] go through LeakyReLU(slope) (the
  /// derivative lands in dz_factor[e]) and a numerically-stable softmax,
  /// leaving the attention weights in alpha[0..count). One call replaces
  /// the separate score / max / exp / normalize passes.
  void (*gat_edge_softmax)(const int64_t* cols, int64_t count, float al_i,
                           const float* ar, float slope, float* alpha,
                           float* dz_factor);

  /// Fused Adam step over n elements: applies weight decay, updates the
  /// first/second moments m and v in place, and writes the bias-corrected
  /// update into value. One pass over four streams.
  void (*adam_update)(float* value, const float* grad, float* m, float* v,
                      const AdamConsts& c, int64_t n);
};

/// The always-available scalar baseline.
const KernelTable& ScalarKernels();

/// The table picked for this process: best compiled-in backend the CPU
/// supports, unless AGL_KERNEL_BACKEND pins one. Resolved once; cheap to
/// call afterwards.
const KernelTable& ActiveKernels();

/// Name of the active backend ("scalar", "avx2") — for logs and tests.
const char* ActiveBackendName();

}  // namespace agl::tensor::kernels
