// Internal to the kernel layer: the cache-blocked gemm loop nests, written
// once and instantiated per backend over its axpy_row / dot /
// scaled_accumulate primitives (passed as non-type template parameters so
// the calls inline). Backends own only the innermost vector arithmetic;
// the blocking strategy is shared and identical, which keeps scalar and
// SIMD numerics in the same accumulation order per primitive call.

#pragma once

#include <algorithm>
#include <cstdint>

#include "tensor/kernels/kernels.h"

namespace agl::tensor::kernels::detail {

using AxpyFn = void (*)(float*, const float*, float, int64_t);
using DotFn = float (*)(const float*, const float*, int64_t);
using SaccFn = void (*)(float*, const float* const*, const float*, int64_t);

// Rows of b per tile in gemm / columns of out per tile in gemm_trans_b.
// 64 rows x 256 float columns = 64 KiB: comfortably L2-resident while the
// row loop streams over it.
inline constexpr int64_t kTileRows = 64;

template <AxpyFn Axpy, SaccFn Sacc>
void GemmBlocked(const float* a, const float* b, float* out,
                 int64_t row_begin, int64_t row_end, int64_t k, int64_t m) {
  for (int64_t p0 = 0; p0 < k; p0 += kTileRows) {
    const int64_t p_end = std::min(k, p0 + kTileRows);
    for (int64_t r = row_begin; r < row_end; ++r) {
      const float* a_row = a + r * k;
      float* out_row = out + r * m;
      int64_t p = p0;
      for (; p + kAccumulateWidth <= p_end; p += kAccumulateWidth) {
        const float w[kAccumulateWidth] = {a_row[p], a_row[p + 1],
                                           a_row[p + 2], a_row[p + 3]};
        if (w[0] == 0.f && w[1] == 0.f && w[2] == 0.f && w[3] == 0.f) {
          continue;  // ReLU-sparse activations make whole groups vanish
        }
        const float* srcs[kAccumulateWidth] = {b + p * m, b + (p + 1) * m,
                                               b + (p + 2) * m,
                                               b + (p + 3) * m};
        Sacc(out_row, srcs, w, m);
      }
      for (; p < p_end; ++p) {
        if (a_row[p] != 0.f) Axpy(out_row, b + p * m, a_row[p], m);
      }
    }
  }
}

template <AxpyFn Axpy, SaccFn Sacc>
void GemmTransABlocked(const float* a, const float* b, float* out,
                       int64_t i_begin, int64_t i_end, int64_t k, int64_t m) {
  // out[p, :] += a[i, p] * b[i, :] — i is the contraction axis. Peeling i
  // in groups of 4 turns the update of each out row into one
  // scaled_accumulate, quartering the out-row traffic.
  int64_t i = i_begin;
  for (; i + kAccumulateWidth <= i_end; i += kAccumulateWidth) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    const float* srcs[kAccumulateWidth] = {b + i * m, b + (i + 1) * m,
                                           b + (i + 2) * m, b + (i + 3) * m};
    for (int64_t p = 0; p < k; ++p) {
      const float w[kAccumulateWidth] = {a0[p], a1[p], a2[p], a3[p]};
      if (w[0] == 0.f && w[1] == 0.f && w[2] == 0.f && w[3] == 0.f) continue;
      Sacc(out + p * m, srcs, w, m);
    }
  }
  for (; i < i_end; ++i) {
    const float* a_row = a + i * k;
    const float* b_row = b + i * m;
    for (int64_t p = 0; p < k; ++p) {
      if (a_row[p] != 0.f) Axpy(out + p * m, b_row, a_row[p], m);
    }
  }
}

template <DotFn Dot>
void GemmTransBBlocked(const float* a, const float* b, float* out,
                       int64_t row_begin, int64_t row_end, int64_t k,
                       int64_t m) {
  for (int64_t j0 = 0; j0 < m; j0 += kTileRows) {
    const int64_t j_end = std::min(m, j0 + kTileRows);
    for (int64_t r = row_begin; r < row_end; ++r) {
      const float* a_row = a + r * k;
      float* out_row = out + r * m;
      for (int64_t j = j0; j < j_end; ++j) {
        out_row[j] += Dot(a_row, b + j * k, k);
      }
    }
  }
}

}  // namespace agl::tensor::kernels::detail
