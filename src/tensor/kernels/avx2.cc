// AVX2 + FMA backend. Compiled only when AGL_SIMD=ON on an x86-64
// toolchain (this TU gets -mavx2 -mfma); selected at runtime only when the
// CPU reports both features, so shipping the binary to an older machine is
// safe. Vector bodies process 8 floats per lane with unaligned loads and a
// scalar tail — no read ever crosses the end of an operand, which keeps
// ASan quiet without padded allocations.

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "tensor/kernels/blocked_loops.h"
#include "tensor/kernels/kernels.h"

namespace agl::tensor::kernels {
namespace {

inline float HorizontalSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

// exp(x) on 8 lanes, cephes-style: range-reduce by log2(e), degree-6
// polynomial on the remainder, scale by 2^k through the exponent bits.
// ~2 ulp over the post-max-subtraction softmax domain (x <= 0).
inline __m256 Exp256(__m256 x) {
  const __m256 hi = _mm256_set1_ps(88.3762626647950f);
  const __m256 lo = _mm256_set1_ps(-88.3762626647949f);
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 c1 = _mm256_set1_ps(0.693359375f);
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);

  x = _mm256_max_ps(_mm256_min_ps(x, hi), lo);
  __m256 fx = _mm256_floor_ps(_mm256_fmadd_ps(x, log2e, half));
  x = _mm256_fnmadd_ps(fx, c1, x);
  x = _mm256_fnmadd_ps(fx, c2, x);

  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, half);
  y = _mm256_fmadd_ps(y, _mm256_mul_ps(x, x), _mm256_add_ps(x, one));

  __m256i k = _mm256_cvttps_epi32(fx);
  k = _mm256_slli_epi32(_mm256_add_epi32(k, _mm256_set1_epi32(0x7f)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(k));
}

void AxpyRow(float* dst, const float* src, float alpha, int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m256 d0 = _mm256_loadu_ps(dst + j);
    const __m256 d1 = _mm256_loadu_ps(dst + j + 8);
    _mm256_storeu_ps(dst + j,
                     _mm256_fmadd_ps(va, _mm256_loadu_ps(src + j), d0));
    _mm256_storeu_ps(dst + j + 8,
                     _mm256_fmadd_ps(va, _mm256_loadu_ps(src + j + 8), d1));
  }
  for (; j + 8 <= n; j += 8) {
    const __m256 d = _mm256_loadu_ps(dst + j);
    _mm256_storeu_ps(dst + j,
                     _mm256_fmadd_ps(va, _mm256_loadu_ps(src + j), d));
  }
  for (; j < n; ++j) dst[j] += alpha * src[j];
}

float Dot(const float* a, const float* b, int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 8),
                           _mm256_loadu_ps(b + j + 8), acc1);
  }
  for (; j + 8 <= n; j += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j),
                           acc0);
  }
  float acc = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; j < n; ++j) acc += a[j] * b[j];
  return acc;
}

void ScaledAccumulate(float* dst, const float* const* srcs, const float* w,
                      int64_t n) {
  const float* s0 = srcs[0];
  const float* s1 = srcs[1];
  const float* s2 = srcs[2];
  const float* s3 = srcs[3];
  const __m256 w0 = _mm256_set1_ps(w[0]);
  const __m256 w1 = _mm256_set1_ps(w[1]);
  const __m256 w2 = _mm256_set1_ps(w[2]);
  const __m256 w3 = _mm256_set1_ps(w[3]);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 d = _mm256_loadu_ps(dst + j);
    d = _mm256_fmadd_ps(w0, _mm256_loadu_ps(s0 + j), d);
    d = _mm256_fmadd_ps(w1, _mm256_loadu_ps(s1 + j), d);
    d = _mm256_fmadd_ps(w2, _mm256_loadu_ps(s2 + j), d);
    d = _mm256_fmadd_ps(w3, _mm256_loadu_ps(s3 + j), d);
    _mm256_storeu_ps(dst + j, d);
  }
  for (; j < n; ++j) {
    dst[j] += w[0] * s0[j] + w[1] * s1[j] + w[2] * s2[j] + w[3] * s3[j];
  }
}

void RowSoftmax(float* x, int64_t n) {
  if (n == 0) return;
  float mx = -std::numeric_limits<float>::infinity();
  int64_t j = 0;
  if (n >= 8) {
    __m256 vmax = _mm256_loadu_ps(x);
    for (j = 8; j + 8 <= n; j += 8) {
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(x + j));
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, vmax);
    for (float lane : lanes) mx = std::max(mx, lane);
  } else {
    j = 0;
  }
  for (; j < n; ++j) mx = std::max(mx, x[j]);

  const __m256 vmx = _mm256_set1_ps(mx);
  __m256 vsum = _mm256_setzero_ps();
  for (j = 0; j + 8 <= n; j += 8) {
    const __m256 e = Exp256(_mm256_sub_ps(_mm256_loadu_ps(x + j), vmx));
    _mm256_storeu_ps(x + j, e);
    vsum = _mm256_add_ps(vsum, e);
  }
  if (j < n) {
    // Partial final group (also the whole row when n < 8): run Exp256 on a
    // stack buffer padded with the row max, and zero the pad lanes before
    // they can touch the sum. Keeps exp vectorized for the short
    // attention rows that dominate real degree distributions.
    alignas(32) float buf[8];
    const int64_t rem = n - j;
    for (int64_t t = 0; t < rem; ++t) buf[t] = x[j + t];
    for (int64_t t = rem; t < 8; ++t) buf[t] = mx;
    __m256 e = Exp256(_mm256_sub_ps(_mm256_load_ps(buf), vmx));
    alignas(32) static constexpr uint32_t kLaneMask[16] = {
        ~0u, ~0u, ~0u, ~0u, ~0u, ~0u, ~0u, ~0u, 0, 0, 0, 0, 0, 0, 0, 0};
    const __m256 keep = _mm256_loadu_ps(reinterpret_cast<const float*>(
        kLaneMask + (8 - rem)));
    e = _mm256_and_ps(e, keep);
    _mm256_store_ps(buf, e);
    for (int64_t t = 0; t < rem; ++t) x[j + t] = buf[t];
    vsum = _mm256_add_ps(vsum, e);
  }
  float denom = HorizontalSum(vsum);

  const float inv = 1.f / denom;
  const __m256 vinv = _mm256_set1_ps(inv);
  for (j = 0; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(x + j, _mm256_mul_ps(_mm256_loadu_ps(x + j), vinv));
  }
  for (; j < n; ++j) x[j] *= inv;
}

void SpmmRow(float* out_row, const float* dense, const int64_t* cols,
             const float* w, int64_t count, int64_t f) {
  int64_t j = 0;
  // 32-float chunks of the output row live in four accumulators across the
  // whole edge list; each edge contributes four FMAs per chunk. Prefetch
  // runs a couple dozen edges ahead of the gather to cover DRAM latency.
  for (; j + 32 <= f; j += 32) {
    __m256 acc0 = _mm256_loadu_ps(out_row + j);
    __m256 acc1 = _mm256_loadu_ps(out_row + j + 8);
    __m256 acc2 = _mm256_loadu_ps(out_row + j + 16);
    __m256 acc3 = _mm256_loadu_ps(out_row + j + 24);
    for (int64_t e = 0; e < count; ++e) {
      // Only the first chunk pass prefetches: later passes re-touch rows
      // the first pass already pulled in.
      if (j == 0 && e + 24 < count) {
        const float* pf = dense + cols[e + 24] * f;
        for (int64_t o = 0; o < f; o += 16) __builtin_prefetch(pf + o);
      }
      const float* src = dense + cols[e] * f + j;
      const __m256 we = _mm256_set1_ps(w[e]);
      acc0 = _mm256_fmadd_ps(we, _mm256_loadu_ps(src), acc0);
      acc1 = _mm256_fmadd_ps(we, _mm256_loadu_ps(src + 8), acc1);
      acc2 = _mm256_fmadd_ps(we, _mm256_loadu_ps(src + 16), acc2);
      acc3 = _mm256_fmadd_ps(we, _mm256_loadu_ps(src + 24), acc3);
    }
    _mm256_storeu_ps(out_row + j, acc0);
    _mm256_storeu_ps(out_row + j + 8, acc1);
    _mm256_storeu_ps(out_row + j + 16, acc2);
    _mm256_storeu_ps(out_row + j + 24, acc3);
  }
  for (; j + 8 <= f; j += 8) {
    __m256 acc = _mm256_loadu_ps(out_row + j);
    for (int64_t e = 0; e < count; ++e) {
      if (j == 0 && e + 24 < count) {
        __builtin_prefetch(dense + cols[e + 24] * f);
      }
      acc = _mm256_fmadd_ps(_mm256_set1_ps(w[e]),
                            _mm256_loadu_ps(dense + cols[e] * f + j), acc);
    }
    _mm256_storeu_ps(out_row + j, acc);
  }
  for (; j < f; ++j) {
    float acc = out_row[j];
    for (int64_t e = 0; e < count; ++e) {
      acc += w[e] * dense[cols[e] * f + j];
    }
    out_row[j] = acc;
  }
}

void GatEdgeSoftmax(const int64_t* cols, int64_t count, float al_i,
                    const float* ar, float slope, float* alpha,
                    float* dz_factor) {
  const __m128 vz0 = _mm_setzero_ps();
  const __m128 vone = _mm_set1_ps(1.f);
  const __m128 vslope = _mm_set1_ps(slope);
  const __m128 vali = _mm_set1_ps(al_i);
  int64_t e = 0;
  for (; e + 4 <= count; e += 4) {
    // 4 edges at a time: 64-bit index gather out of ar, LeakyReLU and its
    // derivative via blends on the sign mask.
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + e));
    const __m128 z = _mm_add_ps(vali, _mm256_i64gather_ps(ar, idx, 4));
    const __m128 pos = _mm_cmpgt_ps(z, vz0);
    _mm_storeu_ps(alpha + e, _mm_blendv_ps(_mm_mul_ps(vslope, z), z, pos));
    _mm_storeu_ps(dz_factor + e, _mm_blendv_ps(vslope, vone, pos));
  }
  for (; e < count; ++e) {
    const float z = al_i + ar[cols[e]];
    dz_factor[e] = z > 0.f ? 1.f : slope;
    alpha[e] = z > 0.f ? z : slope * z;
  }
  RowSoftmax(alpha, count);
}

void AdamUpdate(float* value, const float* grad, float* m, float* v,
                const AdamConsts& c, int64_t n) {
  const __m256 b1 = _mm256_set1_ps(c.beta1);
  const __m256 omb1 = _mm256_set1_ps(1.f - c.beta1);
  const __m256 b2 = _mm256_set1_ps(c.beta2);
  const __m256 omb2 = _mm256_set1_ps(1.f - c.beta2);
  const __m256 wd = _mm256_set1_ps(c.weight_decay);
  const __m256 ib1 = _mm256_set1_ps(c.inv_bias1);
  const __m256 ib2 = _mm256_set1_ps(c.inv_bias2);
  const __m256 lr = _mm256_set1_ps(c.lr);
  const __m256 eps = _mm256_set1_ps(c.eps);
  const bool decay = c.weight_decay > 0.f;
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256 g = _mm256_loadu_ps(grad + j);
    __m256 val = _mm256_loadu_ps(value + j);
    if (decay) g = _mm256_fmadd_ps(wd, val, g);
    const __m256 vm =
        _mm256_fmadd_ps(b1, _mm256_loadu_ps(m + j), _mm256_mul_ps(omb1, g));
    const __m256 vv = _mm256_fmadd_ps(
        b2, _mm256_loadu_ps(v + j), _mm256_mul_ps(omb2, _mm256_mul_ps(g, g)));
    _mm256_storeu_ps(m + j, vm);
    _mm256_storeu_ps(v + j, vv);
    const __m256 mhat = _mm256_mul_ps(vm, ib1);
    const __m256 denom =
        _mm256_add_ps(_mm256_sqrt_ps(_mm256_mul_ps(vv, ib2)), eps);
    val = _mm256_sub_ps(val,
                        _mm256_div_ps(_mm256_mul_ps(lr, mhat), denom));
    _mm256_storeu_ps(value + j, val);
  }
  for (; j < n; ++j) {
    float g = grad[j];
    if (decay) g += c.weight_decay * value[j];
    m[j] = c.beta1 * m[j] + (1.f - c.beta1) * g;
    v[j] = c.beta2 * v[j] + (1.f - c.beta2) * g * g;
    value[j] -= c.lr * (m[j] * c.inv_bias1) /
                (std::sqrt(v[j] * c.inv_bias2) + c.eps);
  }
}

}  // namespace

const KernelTable& Avx2Kernels() {
  static const KernelTable table = {
      "avx2",
      AxpyRow,
      Dot,
      ScaledAccumulate,
      RowSoftmax,
      detail::GemmBlocked<AxpyRow, ScaledAccumulate>,
      detail::GemmTransABlocked<AxpyRow, ScaledAccumulate>,
      detail::GemmTransBBlocked<Dot>,
      SpmmRow,
      GatEdgeSoftmax,
      AdamUpdate,
  };
  return table;
}

}  // namespace agl::tensor::kernels
