// Backend selection. Resolved once per process: CPU feature probe, then
// the AGL_KERNEL_BACKEND env override ("scalar" | "avx2" | "auto"). An
// override naming a backend this build or CPU lacks degrades to scalar
// with a log line rather than failing, so one config file can cover a
// heterogeneous fleet.

#include "tensor/kernels/kernels.h"

#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace agl::tensor::kernels {

#if defined(AGL_KERNELS_HAVE_AVX2)
const KernelTable& Avx2Kernels();  // defined in avx2.cc

namespace {
bool CpuSupportsAvx2Fma() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}
}  // namespace
#endif  // AGL_KERNELS_HAVE_AVX2

namespace {

const KernelTable* Resolve() {
  const char* env = std::getenv("AGL_KERNEL_BACKEND");
  const std::string want = env != nullptr ? env : "auto";
  if (want == "scalar") return &ScalarKernels();
#if defined(AGL_KERNELS_HAVE_AVX2)
  if (want == "avx2" || want == "auto") {
    if (CpuSupportsAvx2Fma()) return &Avx2Kernels();
    if (want == "avx2") {
      AGL_LOG(Warning) << "AGL_KERNEL_BACKEND=avx2 requested but the CPU "
                          "lacks AVX2+FMA; using scalar kernels";
    }
    return &ScalarKernels();
  }
#else
  if (want == "avx2") {
    AGL_LOG(Warning) << "AGL_KERNEL_BACKEND=avx2 requested but this build "
                        "has no AVX2 backend (AGL_SIMD=OFF or non-x86); "
                        "using scalar kernels";
    return &ScalarKernels();
  }
#endif
  if (want != "auto") {
    AGL_LOG(Warning) << "Unknown AGL_KERNEL_BACKEND '" << want
                     << "'; using scalar kernels";
  }
  return &ScalarKernels();
}

}  // namespace

const KernelTable& ActiveKernels() {
  static const KernelTable* const table = Resolve();
  return *table;
}

const char* ActiveBackendName() { return ActiveKernels().name; }

}  // namespace agl::tensor::kernels
