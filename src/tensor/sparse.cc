#include "tensor/sparse.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "tensor/kernels/kernels.h"

namespace agl::tensor {

SparseMatrix SparseMatrix::FromCoo(int64_t rows, int64_t cols,
                                   std::vector<CooEntry> entries) {
  for (const CooEntry& e : entries) {
    AGL_CHECK_GE(e.row, 0);
    AGL_CHECK_LT(e.row, rows);
    AGL_CHECK_GE(e.col, 0);
    AGL_CHECK_LT(e.col, cols);
  }
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    // Entries are sorted, so duplicates are adjacent; coalesce by summing.
    if (i > 0 && entries[i - 1].row == entries[i].row &&
        entries[i - 1].col == entries[i].col) {
      m.values_.back() += entries[i].value;
      continue;
    }
    m.col_idx_.push_back(entries[i].col);
    m.values_.push_back(entries[i].value);
    m.row_ptr_[entries[i].row + 1]++;
  }
  for (int64_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

SparseMatrix SparseMatrix::FromCsr(int64_t rows, int64_t cols,
                                   std::vector<int64_t> row_ptr,
                                   std::vector<int64_t> col_idx,
                                   std::vector<float> values) {
  AGL_CHECK_EQ(static_cast<int64_t>(row_ptr.size()), rows + 1);
  AGL_CHECK_EQ(col_idx.size(), values.size());
  AGL_CHECK_EQ(row_ptr.back(), static_cast<int64_t>(col_idx.size()));
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

SparseMatrix SparseMatrix::Transposed() const {
  // Counting-sort transpose, O(nnz + rows + cols): histogram the column
  // indices, prefix-sum into the transposed row_ptr, then scatter. Scanning
  // source rows in ascending order lands each transposed row's columns
  // already sorted, so no per-row sort (and no COO round-trip) is needed.
  SparseMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  t.col_idx_.resize(nnz());
  t.values_.resize(nnz());
  for (const int64_t c : col_idx_) t.row_ptr_[c + 1]++;
  for (int64_t c = 0; c < cols_; ++c) t.row_ptr_[c + 1] += t.row_ptr_[c];
  std::vector<int64_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const int64_t slot = cursor[col_idx_[p]]++;
      t.col_idx_[slot] = r;
      t.values_[slot] = values_[p];
    }
  }
  return t;
}

SparseMatrix SparseMatrix::RowNormalized() const {
  SparseMatrix out = *this;
  for (int64_t r = 0; r < rows_; ++r) {
    float sum = 0.f;
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      sum += std::fabs(values_[p]);
    }
    if (sum <= 0.f) continue;
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      out.values_[p] = values_[p] / sum;
    }
  }
  return out;
}

SparseMatrix SparseMatrix::GcnNormalized() const {
  // Degree of a row = sum of in-edge weights; degree of a column = sum of
  // out-edge weights. Scale each entry by 1/sqrt(d_row * d_col).
  std::vector<float> row_deg(rows_, 0.f), col_deg(cols_, 0.f);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      row_deg[r] += values_[p];
      col_deg[col_idx_[p]] += values_[p];
    }
  }
  SparseMatrix out = *this;
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const float d = row_deg[r] * col_deg[col_idx_[p]];
      out.values_[p] = d > 0.f ? values_[p] / std::sqrt(d) : 0.f;
    }
  }
  return out;
}

SparseMatrix SparseMatrix::WithSelfLoops() const {
  AGL_CHECK_EQ(rows_, cols_);
  // Rows are already column-sorted: merge the diagonal entry in linearly.
  std::vector<int64_t> row_ptr(rows_ + 1, 0);
  std::vector<int64_t> col_idx;
  std::vector<float> values;
  col_idx.reserve(nnz() + rows_);
  values.reserve(nnz() + rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    bool inserted = false;
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const int64_t c = col_idx_[p];
      if (!inserted && c >= r) {
        if (c != r) {
          col_idx.push_back(r);
          values.push_back(1.f);
        }
        inserted = true;
      }
      col_idx.push_back(c);
      values.push_back(values_[p]);
    }
    if (!inserted) {
      col_idx.push_back(r);
      values.push_back(1.f);
    }
    row_ptr[r + 1] = static_cast<int64_t>(col_idx.size());
  }
  return FromCsr(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                 std::move(values));
}

Tensor Spmm(const SparseMatrix& a, const Tensor& dense,
            const SpmmOptions& opts) {
  AGL_CHECK_EQ(a.cols(), dense.rows())
      << "Spmm shape mismatch: A is [" << a.rows() << " x " << a.cols()
      << "], dense is " << dense.ShapeString();
  Tensor out(a.rows(), dense.cols());
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  const int64_t f = dense.cols();

  // Each output row is produced by one spmm_row call: the kernel keeps the
  // row in registers across all of its edges (blocked over the feature
  // dimension) and prefetches upcoming gathered rows itself. The same
  // kernel runs per row regardless of the partitioning, keeping thread
  // counts bit-for-bit identical.
  const auto& kt = kernels::ActiveKernels();
  auto aggregate_span = [&](RowSpan span) {
    for (int64_t r = span.row_begin; r < span.row_end; ++r) {
      const int64_t begin = row_ptr[r];
      kt.spmm_row(out.row(r), dense.data(), col_idx.data() + begin,
                  values.data() + begin, row_ptr[r + 1] - begin, f);
    }
  };

  if (opts.num_threads <= 1 || a.rows() < 2) {
    aggregate_span({0, a.rows()});
    return out;
  }
  const std::vector<RowSpan> spans =
      PartitionRowsByNnz(row_ptr, a.rows(), opts.num_threads);
  GlobalThreadPool().ParallelFor(spans.size(), [&](std::size_t i) {
    aggregate_span(spans[i]);
  });
  return out;
}

}  // namespace agl::tensor
