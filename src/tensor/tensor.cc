#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/thread_pool.h"

namespace agl::tensor {

Tensor Tensor::Full(int64_t rows, int64_t cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t(n, n);
  for (int64_t i = 0; i < n; ++i) t.at(i, i) = 1.f;
  return t;
}

Tensor Tensor::RandomUniform(int64_t rows, int64_t cols, float lo, float hi,
                             Rng* rng) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::RandomNormal(int64_t rows, int64_t cols, float mean,
                            float stddev, Rng* rng) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::GlorotUniform(int64_t rows, int64_t cols, Rng* rng) {
  const float limit = std::sqrt(6.f / static_cast<float>(rows + cols));
  return RandomUniform(rows, cols, -limit, limit, rng);
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::Add(const Tensor& other) {
  AGL_CHECK_EQ(rows_, other.rows_);
  AGL_CHECK_EQ(cols_, other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  AGL_CHECK_EQ(rows_, other.rows_);
  AGL_CHECK_EQ(cols_, other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Tensor::Scale(float alpha) {
  for (float& v : data_) v *= alpha;
}

Tensor Tensor::Row(int64_t r) const { return RowSlice(r, r + 1); }

Tensor Tensor::RowSlice(int64_t begin, int64_t end) const {
  AGL_CHECK_GE(begin, 0);
  AGL_CHECK_LE(end, rows_);
  AGL_CHECK_LE(begin, end);
  Tensor out(end - begin, cols_);
  std::copy(data_.begin() + begin * cols_, data_.begin() + end * cols_,
            out.data());
  return out;
}

Tensor Tensor::GatherRows(const std::vector<int64_t>& indices) const {
  Tensor out(static_cast<int64_t>(indices.size()), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    AGL_CHECK_GE(indices[i], 0);
    AGL_CHECK_LT(indices[i], rows_);
    std::copy(row(indices[i]), row(indices[i]) + cols_, out.row(i));
  }
  return out;
}

double Tensor::Sum() const {
  double s = 0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::SquaredNorm() const {
  double s = 0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

float Tensor::AbsMax() const {
  float m = 0;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Tensor::AllClose(const Tensor& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[" << rows_ << " x " << cols_ << "]";
  return os.str();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  AGL_CHECK_EQ(a.cols(), b.rows()) << "MatMul shape mismatch " << a.ShapeString()
                                   << " @ " << b.ShapeString();
  Tensor out(a.rows(), b.cols());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  auto body = [&](std::size_t i) {
    float* out_row = out.row(static_cast<int64_t>(i));
    const float* a_row = a.row(static_cast<int64_t>(i));
    for (int64_t p = 0; p < k; ++p) {
      const float av = a_row[p];
      if (av == 0.f) continue;
      const float* b_row = b.row(p);
      for (int64_t j = 0; j < m; ++j) out_row[j] += av * b_row[j];
    }
  };
  // Parallelism only pays off for reasonably sized products.
  if (n * k * m > (1 << 16)) {
    GlobalThreadPool().ParallelFor(static_cast<std::size_t>(n), body);
  } else {
    for (int64_t i = 0; i < n; ++i) body(static_cast<std::size_t>(i));
  }
  return out;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  AGL_CHECK_EQ(a.rows(), b.rows());
  Tensor out(a.cols(), b.cols());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  // out[p, j] = sum_i a[i, p] * b[i, j]; serial accumulation to stay
  // deterministic (gradient path).
  for (int64_t i = 0; i < n; ++i) {
    const float* a_row = a.row(i);
    const float* b_row = b.row(i);
    for (int64_t p = 0; p < k; ++p) {
      const float av = a_row[p];
      if (av == 0.f) continue;
      float* out_row = out.row(p);
      for (int64_t j = 0; j < m; ++j) out_row[j] += av * b_row[j];
    }
  }
  return out;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  AGL_CHECK_EQ(a.cols(), b.cols());
  Tensor out(a.rows(), b.rows());
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  auto body = [&](std::size_t i) {
    float* out_row = out.row(static_cast<int64_t>(i));
    const float* a_row = a.row(static_cast<int64_t>(i));
    for (int64_t j = 0; j < m; ++j) {
      const float* b_row = b.row(j);
      float acc = 0.f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      out_row[j] = acc;
    }
  };
  if (n * k * m > (1 << 16)) {
    GlobalThreadPool().ParallelFor(static_cast<std::size_t>(n), body);
  } else {
    for (int64_t i = 0; i < n; ++i) body(static_cast<std::size_t>(i));
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  Tensor out(a.cols(), a.rows());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

namespace {
Tensor Zip(const Tensor& a, const Tensor& b, float (*fn)(float, float)) {
  AGL_CHECK_EQ(a.rows(), b.rows());
  AGL_CHECK_EQ(a.cols(), b.cols());
  Tensor out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.size(); ++i) {
    out.data()[i] = fn(a.data()[i], b.data()[i]);
  }
  return out;
}
}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x * y; });
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  AGL_CHECK_EQ(bias.rows(), 1);
  AGL_CHECK_EQ(bias.cols(), a.cols());
  Tensor out = a;
  for (int64_t i = 0; i < a.rows(); ++i) {
    float* r = out.row(i);
    for (int64_t j = 0; j < a.cols(); ++j) r[j] += bias.at(0, j);
  }
  return out;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.size(); ++i) out.data()[i] = fn(a.data()[i]);
  return out;
}

Tensor RowSoftmax(const Tensor& a) {
  Tensor out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* in = a.row(i);
    float* o = out.row(i);
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < a.cols(); ++j) mx = std::max(mx, in[j]);
    float denom = 0.f;
    for (int64_t j = 0; j < a.cols(); ++j) {
      o[j] = std::exp(in[j] - mx);
      denom += o[j];
    }
    for (int64_t j = 0; j < a.cols(); ++j) o[j] /= denom;
  }
  return out;
}

Tensor RowLogSoftmax(const Tensor& a) {
  Tensor out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* in = a.row(i);
    float* o = out.row(i);
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < a.cols(); ++j) mx = std::max(mx, in[j]);
    float denom = 0.f;
    for (int64_t j = 0; j < a.cols(); ++j) denom += std::exp(in[j] - mx);
    const float log_denom = std::log(denom) + mx;
    for (int64_t j = 0; j < a.cols(); ++j) o[j] = in[j] - log_denom;
  }
  return out;
}

Tensor RowSum(const Tensor& a) {
  Tensor out(a.rows(), 1);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* r = a.row(i);
    float s = 0.f;
    for (int64_t j = 0; j < a.cols(); ++j) s += r[j];
    out.at(i, 0) = s;
  }
  return out;
}

Tensor ColMean(const Tensor& a) {
  Tensor out(1, a.cols());
  if (a.rows() == 0) return out;
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* r = a.row(i);
    for (int64_t j = 0; j < a.cols(); ++j) out.at(0, j) += r[j];
  }
  out.Scale(1.f / static_cast<float>(a.rows()));
  return out;
}

}  // namespace agl::tensor
