#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/thread_pool.h"
#include "tensor/kernels/kernels.h"

namespace agl::tensor {

namespace {

// Below this flop count a kernel call on the caller's thread beats the
// fork/join overhead of the pool.
constexpr int64_t kParallelFlopThreshold = 1 << 16;

// Number of contiguous row chunks to hand the pool: a few per worker so
// uneven rows still balance.
int64_t NumRowChunks(int64_t rows) {
  const auto workers = static_cast<int64_t>(GlobalThreadPool().num_threads());
  return std::min<int64_t>(rows, 4 * workers);
}

}  // namespace

Tensor Tensor::Full(int64_t rows, int64_t cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t(n, n);
  for (int64_t i = 0; i < n; ++i) t.at(i, i) = 1.f;
  return t;
}

Tensor Tensor::RandomUniform(int64_t rows, int64_t cols, float lo, float hi,
                             Rng* rng) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::RandomNormal(int64_t rows, int64_t cols, float mean,
                            float stddev, Rng* rng) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::GlorotUniform(int64_t rows, int64_t cols, Rng* rng) {
  const float limit = std::sqrt(6.f / static_cast<float>(rows + cols));
  return RandomUniform(rows, cols, -limit, limit, rng);
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::Add(const Tensor& other) {
  AGL_CHECK_EQ(rows_, other.rows_);
  AGL_CHECK_EQ(cols_, other.cols_);
  kernels::ActiveKernels().axpy_row(data_.data(), other.data_.data(), 1.f,
                                    static_cast<int64_t>(data_.size()));
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  AGL_CHECK_EQ(rows_, other.rows_);
  AGL_CHECK_EQ(cols_, other.cols_);
  kernels::ActiveKernels().axpy_row(data_.data(), other.data_.data(), alpha,
                                    static_cast<int64_t>(data_.size()));
}

void Tensor::Scale(float alpha) {
  for (float& v : data_) v *= alpha;
}

Tensor Tensor::Row(int64_t r) const { return RowSlice(r, r + 1); }

Tensor Tensor::RowSlice(int64_t begin, int64_t end) const {
  AGL_CHECK_GE(begin, 0);
  AGL_CHECK_LE(end, rows_);
  AGL_CHECK_LE(begin, end);
  Tensor out(end - begin, cols_);
  std::copy(data_.begin() + begin * cols_, data_.begin() + end * cols_,
            out.data());
  return out;
}

Tensor Tensor::GatherRows(const std::vector<int64_t>& indices) const {
  Tensor out(static_cast<int64_t>(indices.size()), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    AGL_CHECK_GE(indices[i], 0);
    AGL_CHECK_LT(indices[i], rows_);
    std::copy(row(indices[i]), row(indices[i]) + cols_, out.row(i));
  }
  return out;
}

double Tensor::Sum() const {
  double s = 0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::SquaredNorm() const {
  double s = 0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

float Tensor::AbsMax() const {
  float m = 0;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Tensor::AllClose(const Tensor& other, float tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[" << rows_ << " x " << cols_ << "]";
  return os.str();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  AGL_CHECK_EQ(a.cols(), b.rows()) << "MatMul shape mismatch " << a.ShapeString()
                                   << " @ " << b.ShapeString();
  Tensor out(a.rows(), b.cols());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  const auto& kt = kernels::ActiveKernels();
  // Parallelism only pays off for reasonably sized products (and the
  // threshold check must come first: NumRowChunks spins up the global
  // pool). Chunks cover disjoint output rows, so the split is race- and
  // reduction-free.
  if (n * k * m <= kParallelFlopThreshold) {
    kt.gemm(a.data(), b.data(), out.data(), 0, n, k, m);
    return out;
  }
  const int64_t chunks = NumRowChunks(n);
  if (chunks <= 1) {
    kt.gemm(a.data(), b.data(), out.data(), 0, n, k, m);
    return out;
  }
  GlobalThreadPool().ParallelFor(
      static_cast<std::size_t>(chunks), [&](std::size_t c) {
        const auto i = static_cast<int64_t>(c);
        kt.gemm(a.data(), b.data(), out.data(), n * i / chunks,
                n * (i + 1) / chunks, k, m);
      });
  return out;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  AGL_CHECK_EQ(a.rows(), b.rows());
  Tensor out(a.cols(), b.cols());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  const auto& kt = kernels::ActiveKernels();
  // The contraction runs over rows of a, so parallel chunks would collide
  // on the output. Each chunk therefore contracts a disjoint i-range into
  // its own [k x m] partial; partials are reduced in fixed chunk order,
  // keeping the gradient path deterministic for a given pool size.
  if (n * k * m <= kParallelFlopThreshold) {
    kt.gemm_trans_a(a.data(), b.data(), out.data(), 0, n, k, m);
    return out;
  }
  const auto chunks = std::min<int64_t>(
      n, static_cast<int64_t>(GlobalThreadPool().num_threads()));
  if (chunks <= 1) {
    kt.gemm_trans_a(a.data(), b.data(), out.data(), 0, n, k, m);
    return out;
  }
  std::vector<Tensor> partials;
  partials.reserve(chunks);
  for (int64_t c = 0; c < chunks; ++c) partials.emplace_back(k, m);
  GlobalThreadPool().ParallelFor(
      static_cast<std::size_t>(chunks), [&](std::size_t c) {
        const auto i = static_cast<int64_t>(c);
        kt.gemm_trans_a(a.data(), b.data(), partials[c].data(),
                        n * i / chunks, n * (i + 1) / chunks, k, m);
      });
  for (const Tensor& p : partials) out.Add(p);
  return out;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  AGL_CHECK_EQ(a.cols(), b.cols());
  Tensor out(a.rows(), b.rows());
  const int64_t n = a.rows(), k = a.cols(), m = b.rows();
  const auto& kt = kernels::ActiveKernels();
  if (n * k * m <= kParallelFlopThreshold) {
    kt.gemm_trans_b(a.data(), b.data(), out.data(), 0, n, k, m);
    return out;
  }
  const int64_t chunks = NumRowChunks(n);
  if (chunks <= 1) {
    kt.gemm_trans_b(a.data(), b.data(), out.data(), 0, n, k, m);
    return out;
  }
  GlobalThreadPool().ParallelFor(
      static_cast<std::size_t>(chunks), [&](std::size_t c) {
        const auto i = static_cast<int64_t>(c);
        kt.gemm_trans_b(a.data(), b.data(), out.data(), n * i / chunks,
                        n * (i + 1) / chunks, k, m);
      });
  return out;
}

Tensor Transpose(const Tensor& a) {
  Tensor out(a.cols(), a.rows());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

namespace {
Tensor Zip(const Tensor& a, const Tensor& b, float (*fn)(float, float)) {
  AGL_CHECK_EQ(a.rows(), b.rows());
  AGL_CHECK_EQ(a.cols(), b.cols());
  Tensor out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.size(); ++i) {
    out.data()[i] = fn(a.data()[i], b.data()[i]);
  }
  return out;
}
}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return Zip(a, b, [](float x, float y) { return x * y; });
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  AGL_CHECK_EQ(bias.rows(), 1);
  AGL_CHECK_EQ(bias.cols(), a.cols());
  Tensor out = a;
  for (int64_t i = 0; i < a.rows(); ++i) {
    float* r = out.row(i);
    for (int64_t j = 0; j < a.cols(); ++j) r[j] += bias.at(0, j);
  }
  return out;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.size(); ++i) out.data()[i] = fn(a.data()[i]);
  return out;
}

Tensor RowSoftmax(const Tensor& a) {
  Tensor out = a;
  const auto& kt = kernels::ActiveKernels();
  for (int64_t i = 0; i < a.rows(); ++i) kt.row_softmax(out.row(i), a.cols());
  return out;
}

Tensor RowLogSoftmax(const Tensor& a) {
  Tensor out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* in = a.row(i);
    float* o = out.row(i);
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t j = 0; j < a.cols(); ++j) mx = std::max(mx, in[j]);
    float denom = 0.f;
    for (int64_t j = 0; j < a.cols(); ++j) denom += std::exp(in[j] - mx);
    const float log_denom = std::log(denom) + mx;
    for (int64_t j = 0; j < a.cols(); ++j) o[j] = in[j] - log_denom;
  }
  return out;
}

Tensor RowSum(const Tensor& a) {
  Tensor out(a.rows(), 1);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* r = a.row(i);
    float s = 0.f;
    for (int64_t j = 0; j < a.cols(); ++j) s += r[j];
    out.at(i, 0) = s;
  }
  return out;
}

Tensor ColMean(const Tensor& a) {
  Tensor out(1, a.cols());
  if (a.rows() == 0) return out;
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* r = a.row(i);
    for (int64_t j = 0; j < a.cols(); ++j) out.at(0, j) += r[j];
  }
  out.Scale(1.f / static_cast<float>(a.rows()));
  return out;
}

}  // namespace agl::tensor
