// Edge partitioning (paper §3.3.2, edge-level optimization).
//
// The aggregation Φ(k) walks the sparse adjacency row by row: every edge
// (dst ← src) contributes to exactly one destination row. If all edges with
// the same destination are handled by the same thread, multi-threaded
// aggregation needs no locks or atomics. EdgePartition splits the CSR rows
// into `t` contiguous spans balanced by non-zero count, which is exactly the
// strategy Figure 4 illustrates.

#pragma once

#include <cstdint>
#include <vector>

namespace agl::tensor {

/// A contiguous row span [row_begin, row_end) assigned to one thread.
struct RowSpan {
  int64_t row_begin = 0;
  int64_t row_end = 0;
};

/// Splits `num_rows` CSR rows into at most `num_parts` spans such that each
/// span carries a roughly equal number of non-zeros (`row_ptr` is the CSR
/// row-offset array of length num_rows+1). Rows are never split across
/// spans, so edges sharing a destination stay on one thread.
std::vector<RowSpan> PartitionRowsByNnz(const std::vector<int64_t>& row_ptr,
                                        int64_t num_rows, int num_parts);

}  // namespace agl::tensor
