#include "nn/linear.h"

namespace agl::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(
      "weight", tensor::Tensor::GlorotUniform(in_features, out_features, rng));
  if (bias) {
    bias_ = RegisterParameter("bias", tensor::Tensor(1, out_features));
  }
}

autograd::Variable Linear::Forward(const autograd::Variable& x) const {
  autograd::Variable y = autograd::MatMul(x, weight_);
  if (bias_.defined()) y = autograd::AddBias(y, bias_);
  return y;
}

}  // namespace agl::nn
