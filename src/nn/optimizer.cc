#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace agl::nn {

void Sgd::Step() {
  for (NamedParameter& p : params_) {
    autograd::Variable& var = p.variable;
    if (!var.node()->has_grad()) continue;
    tensor::Tensor& value = var.mutable_value();
    const tensor::Tensor& g = var.grad();
    if (weight_decay_ > 0.f) value.Scale(1.f - lr_ * weight_decay_);
    value.Axpy(-lr_, g);
  }
}

Adam::Adam(std::vector<NamedParameter> params, Options opts)
    : Optimizer(std::move(params)), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const NamedParameter& p : params_) {
    m_.emplace_back(p.variable.rows(), p.variable.cols());
    v_.emplace_back(p.variable.rows(), p.variable.cols());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.f - std::pow(opts_.beta1, static_cast<float>(t_));
  const float bc2 = 1.f - std::pow(opts_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    autograd::Variable& var = params_[i].variable;
    if (!var.node()->has_grad()) continue;
    tensor::Tensor& value = var.mutable_value();
    const tensor::Tensor& g = var.grad();
    tensor::Tensor& m = m_[i];
    tensor::Tensor& v = v_[i];
    for (int64_t k = 0; k < value.size(); ++k) {
      float gk = g.data()[k];
      if (opts_.weight_decay > 0.f) {
        gk += opts_.weight_decay * value.data()[k];
      }
      m.data()[k] = opts_.beta1 * m.data()[k] + (1.f - opts_.beta1) * gk;
      v.data()[k] = opts_.beta2 * v.data()[k] + (1.f - opts_.beta2) * gk * gk;
      const float mhat = m.data()[k] / bc1;
      const float vhat = v.data()[k] / bc2;
      value.data()[k] -= opts_.lr * mhat / (std::sqrt(vhat) + opts_.eps);
    }
  }
}

void AdamApply(const Adam::Options& opts, const tensor::Tensor& grad,
               tensor::Tensor* value, AdamState* state) {
  AGL_CHECK_EQ(grad.size(), value->size());
  if (state->m.empty()) {
    state->m = tensor::Tensor(value->rows(), value->cols());
    state->v = tensor::Tensor(value->rows(), value->cols());
  }
  state->t += 1;
  const float bc1 = 1.f - std::pow(opts.beta1, static_cast<float>(state->t));
  const float bc2 = 1.f - std::pow(opts.beta2, static_cast<float>(state->t));
  for (int64_t k = 0; k < value->size(); ++k) {
    float gk = grad.data()[k];
    if (opts.weight_decay > 0.f) gk += opts.weight_decay * value->data()[k];
    state->m.data()[k] =
        opts.beta1 * state->m.data()[k] + (1.f - opts.beta1) * gk;
    state->v.data()[k] =
        opts.beta2 * state->v.data()[k] + (1.f - opts.beta2) * gk * gk;
    const float mhat = state->m.data()[k] / bc1;
    const float vhat = state->v.data()[k] / bc2;
    value->data()[k] -= opts.lr * mhat / (std::sqrt(vhat) + opts.eps);
  }
}

}  // namespace agl::nn
