#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/kernels/kernels.h"

namespace agl::nn {
namespace {

// Both the local Adam and the server-side AdamApply funnel into the fused
// adam_update kernel; only the bias-correction step count differs (global
// t for the optimizer, per-parameter t for the PS shards).
tensor::kernels::AdamConsts MakeAdamConsts(const Adam::Options& opts,
                                           int64_t t) {
  tensor::kernels::AdamConsts c;
  c.beta1 = opts.beta1;
  c.beta2 = opts.beta2;
  c.lr = opts.lr;
  c.eps = opts.eps;
  c.weight_decay = opts.weight_decay;
  c.inv_bias1 = 1.f / (1.f - std::pow(opts.beta1, static_cast<float>(t)));
  c.inv_bias2 = 1.f / (1.f - std::pow(opts.beta2, static_cast<float>(t)));
  return c;
}

}  // namespace

void Sgd::Step() {
  for (NamedParameter& p : params_) {
    autograd::Variable& var = p.variable;
    if (!var.node()->has_grad()) continue;
    tensor::Tensor& value = var.mutable_value();
    const tensor::Tensor& g = var.grad();
    if (weight_decay_ > 0.f) value.Scale(1.f - lr_ * weight_decay_);
    value.Axpy(-lr_, g);
  }
}

Adam::Adam(std::vector<NamedParameter> params, Options opts)
    : Optimizer(std::move(params)), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const NamedParameter& p : params_) {
    m_.emplace_back(p.variable.rows(), p.variable.cols());
    v_.emplace_back(p.variable.rows(), p.variable.cols());
  }
}

void Adam::Step() {
  ++t_;
  const tensor::kernels::AdamConsts c = MakeAdamConsts(opts_, t_);
  const auto& kt = tensor::kernels::ActiveKernels();
  for (std::size_t i = 0; i < params_.size(); ++i) {
    autograd::Variable& var = params_[i].variable;
    if (!var.node()->has_grad()) continue;
    tensor::Tensor& value = var.mutable_value();
    kt.adam_update(value.data(), var.grad().data(), m_[i].data(),
                   v_[i].data(), c, value.size());
  }
}

void AdamApply(const Adam::Options& opts, const tensor::Tensor& grad,
               tensor::Tensor* value, AdamState* state) {
  AGL_CHECK_EQ(grad.size(), value->size());
  if (state->m.empty()) {
    state->m = tensor::Tensor(value->rows(), value->cols());
    state->v = tensor::Tensor(value->rows(), value->cols());
  }
  state->t += 1;
  const tensor::kernels::AdamConsts c = MakeAdamConsts(opts, state->t);
  tensor::kernels::ActiveKernels().adam_update(
      value->data(), grad.data(), state->m.data(), state->v.data(), c,
      value->size());
}

}  // namespace agl::nn
