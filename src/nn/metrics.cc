#include "nn/metrics.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace agl::nn {

double Accuracy(const tensor::Tensor& logits,
                const std::vector<int64_t>& labels) {
  AGL_CHECK_EQ(logits.rows(), static_cast<int64_t>(labels.size()));
  if (labels.empty()) return 0.0;
  int64_t correct = 0;
  for (int64_t i = 0; i < logits.rows(); ++i) {
    const float* r = logits.row(i);
    int64_t best = 0;
    for (int64_t j = 1; j < logits.cols(); ++j) {
      if (r[j] > r[best]) best = j;
    }
    if (best == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

double MicroF1(const tensor::Tensor& logits, const tensor::Tensor& targets,
               float threshold) {
  AGL_CHECK_EQ(logits.rows(), targets.rows());
  AGL_CHECK_EQ(logits.cols(), targets.cols());
  int64_t tp = 0, fp = 0, fn = 0;
  for (int64_t i = 0; i < logits.size(); ++i) {
    const bool pred = logits.data()[i] > threshold;
    const bool truth = targets.data()[i] > 0.5f;
    if (pred && truth) ++tp;
    if (pred && !truth) ++fp;
    if (!pred && truth) ++fn;
  }
  const double denom = 2.0 * tp + fp + fn;
  return denom > 0 ? 2.0 * tp / denom : 0.0;
}

double Auc(const std::vector<float>& scores, const std::vector<int>& labels) {
  AGL_CHECK_EQ(scores.size(), labels.size());
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  // Average ranks over ties, then apply the Mann-Whitney U statistic.
  std::vector<double> rank(scores.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double avg_rank = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }
  double pos_rank_sum = 0;
  int64_t num_pos = 0, num_neg = 0;
  for (std::size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] == 1) {
      pos_rank_sum += rank[k];
      ++num_pos;
    } else {
      ++num_neg;
    }
  }
  if (num_pos == 0 || num_neg == 0) return 0.5;
  const double u = pos_rank_sum - static_cast<double>(num_pos) *
                                      (static_cast<double>(num_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

}  // namespace agl::nn
