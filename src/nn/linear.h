// Fully-connected layer: y = x @ W + b.

#pragma once

#include "autograd/ops.h"
#include "nn/module.h"

namespace agl::nn {

/// Dense affine transform with Glorot-uniform initialized weights.
class Linear : public Module {
 public:
  /// `bias` may be disabled for layers that follow an aggregation.
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool bias = true);

  autograd::Variable Forward(const autograd::Variable& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  autograd::Variable weight_;  // [in x out]
  autograd::Variable bias_;    // [1 x out], undefined when disabled
};

}  // namespace agl::nn
