// Evaluation metrics matching the paper's protocol: accuracy on Cora,
// micro-F1 on PPI (multi-label), AUC on UUG (binary).

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace agl::nn {

/// Fraction of rows whose argmax matches the label.
double Accuracy(const tensor::Tensor& logits,
                const std::vector<int64_t>& labels);

/// Micro-averaged F1 for multi-label prediction: an entry is predicted
/// positive when its logit > `threshold` (0 == sigmoid 0.5).
double MicroF1(const tensor::Tensor& logits, const tensor::Tensor& targets,
               float threshold = 0.f);

/// Area under the ROC curve for binary scores (higher score => class 1),
/// computed by the rank statistic with tie handling.
double Auc(const std::vector<float>& scores, const std::vector<int>& labels);

}  // namespace agl::nn
