// Gradient-descent optimizers over a parameter list. Adam is the optimizer
// the paper uses for all experiments (§4.1.2). The same update rule also
// runs server-side inside the parameter server (ps/).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nn/module.h"

namespace agl::nn {

/// Interface: consume the accumulated gradients of the registered
/// parameters and update their values in place.
class Optimizer {
 public:
  explicit Optimizer(std::vector<NamedParameter> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;

  void ZeroGrad() {
    for (NamedParameter& p : params_) p.variable.ZeroGrad();
  }

 protected:
  std::vector<NamedParameter> params_;
};

/// Plain SGD with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<NamedParameter> params, float lr, float weight_decay = 0.f)
      : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

  void Step() override;

 private:
  float lr_;
  float weight_decay_;
};

/// Adam hyper-parameters (namespace scope so it can be a default argument).
struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.f;
};

/// Adam (Kingma & Ba, 2014) with bias correction.
class Adam : public Optimizer {
 public:
  using Options = AdamOptions;

  Adam(std::vector<NamedParameter> params, Options opts = {});

  void Step() override;

  int64_t step_count() const { return t_; }

 private:
  Options opts_;
  int64_t t_ = 0;
  std::vector<tensor::Tensor> m_;  // first moment per parameter
  std::vector<tensor::Tensor> v_;  // second moment per parameter
};

/// Stateless functional Adam update used by the parameter-server shards: the
/// moments live with the server, not with the Variables.
struct AdamState {
  tensor::Tensor m;
  tensor::Tensor v;
  int64_t t = 0;
};

/// Applies one Adam update to `value` given `grad`, mutating `state`.
void AdamApply(const Adam::Options& opts, const tensor::Tensor& grad,
               tensor::Tensor* value, AdamState* state);

}  // namespace agl::nn
