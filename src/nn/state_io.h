// Binary (de)serialization of model state dicts — used to store trained
// models on the DFS, ship slices to GraphInfer reducers, and checkpoint
// the trainer.

#pragma once

#include <map>
#include <string>

#include "common/status.h"
#include "tensor/tensor.h"

namespace agl::nn {

/// Flattens a name -> tensor map into a versioned byte string.
std::string SerializeStateDict(
    const std::map<std::string, tensor::Tensor>& state);

/// Parses bytes produced by SerializeStateDict; kCorruption on malformed
/// input.
agl::Result<std::map<std::string, tensor::Tensor>> ParseStateDict(
    const std::string& bytes);

}  // namespace agl::nn
