// Parameter registry shared by layers, optimizers and the parameter server.
//
// A Module owns named parameters (autograd leaf Variables). GNN models are
// Modules composed of layer Modules; the PS shards parameters by these names.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "common/status.h"

namespace agl::nn {

/// A named trainable parameter.
struct NamedParameter {
  std::string name;
  autograd::Variable variable;
};

/// Base class for anything that owns trainable parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// All parameters of this module (and registered children), with
  /// hierarchical dot-separated names.
  std::vector<NamedParameter> Parameters() const;

  /// Total scalar count across all parameters.
  int64_t NumParameters() const;

  /// Zeroes every parameter gradient.
  void ZeroGrad();

  /// Copies parameter values out as a name -> tensor map (PS snapshot /
  /// model segmentation use this).
  std::map<std::string, tensor::Tensor> StateDict() const;

  /// Loads values from a name -> tensor map; missing names are an error,
  /// shape mismatches are an error.
  agl::Status LoadStateDict(const std::map<std::string, tensor::Tensor>& state);

 protected:
  /// Registers an owned parameter under `name`.
  autograd::Variable RegisterParameter(const std::string& name,
                                       tensor::Tensor init);
  /// Registers a child module whose parameters are exposed under
  /// "<name>.<child param name>".
  void RegisterChild(const std::string& name, Module* child);

 private:
  std::vector<NamedParameter> own_params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace agl::nn
