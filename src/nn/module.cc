#include "nn/module.h"

#include "common/logging.h"

namespace agl::nn {

std::vector<NamedParameter> Module::Parameters() const {
  std::vector<NamedParameter> out = own_params_;
  for (const auto& [child_name, child] : children_) {
    for (NamedParameter p : child->Parameters()) {
      p.name = child_name + "." + p.name;
      out.push_back(std::move(p));
    }
  }
  return out;
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const NamedParameter& p : Parameters()) n += p.variable.value().size();
  return n;
}

void Module::ZeroGrad() {
  for (NamedParameter& p : Parameters()) p.variable.ZeroGrad();
}

std::map<std::string, tensor::Tensor> Module::StateDict() const {
  std::map<std::string, tensor::Tensor> out;
  for (const NamedParameter& p : Parameters()) {
    out.emplace(p.name, p.variable.value());
  }
  return out;
}

agl::Status Module::LoadStateDict(
    const std::map<std::string, tensor::Tensor>& state) {
  for (NamedParameter& p : Parameters()) {
    auto it = state.find(p.name);
    if (it == state.end()) {
      return agl::Status::NotFound("missing parameter in state dict: " +
                                   p.name);
    }
    if (it->second.rows() != p.variable.rows() ||
        it->second.cols() != p.variable.cols()) {
      return agl::Status::InvalidArgument(
          "shape mismatch for " + p.name + ": expected " +
          p.variable.value().ShapeString() + " got " +
          it->second.ShapeString());
    }
    p.variable.mutable_value() = it->second;
  }
  return agl::Status::OK();
}

autograd::Variable Module::RegisterParameter(const std::string& name,
                                             tensor::Tensor init) {
  for (const NamedParameter& p : own_params_) {
    AGL_CHECK_NE(p.name, name) << "duplicate parameter name";
  }
  autograd::Variable v = autograd::Variable::Parameter(std::move(init));
  own_params_.push_back({name, v});
  return v;
}

void Module::RegisterChild(const std::string& name, Module* child) {
  children_.emplace_back(name, child);
}

}  // namespace agl::nn
