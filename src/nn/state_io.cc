#include "nn/state_io.h"

#include "io/codec.h"

namespace agl::nn {
namespace {
constexpr uint32_t kMagic = 0x41474c53;  // "AGLS"
}

std::string SerializeStateDict(
    const std::map<std::string, tensor::Tensor>& state) {
  io::BufferWriter w;
  w.PutFixed32(kMagic);
  w.PutVarint64(state.size());
  for (const auto& [key, value] : state) {
    w.PutString(key);
    w.PutVarint64Signed(value.rows());
    w.PutVarint64Signed(value.cols());
    w.PutBytes(value.data(), value.size() * sizeof(float));
  }
  return w.Release();
}

agl::Result<std::map<std::string, tensor::Tensor>> ParseStateDict(
    const std::string& bytes) {
  io::BufferReader r(bytes);
  uint32_t magic;
  AGL_RETURN_IF_ERROR(r.GetFixed32(&magic));
  if (magic != kMagic) {
    return agl::Status::Corruption("state dict: bad magic");
  }
  uint64_t n;
  AGL_RETURN_IF_ERROR(r.GetVarint64(&n));
  std::map<std::string, tensor::Tensor> state;
  for (uint64_t i = 0; i < n; ++i) {
    std::string key;
    AGL_RETURN_IF_ERROR(r.GetString(&key));
    int64_t rows, cols;
    AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&rows));
    AGL_RETURN_IF_ERROR(r.GetVarint64Signed(&cols));
    if (rows < 0 || cols < 0) {
      return agl::Status::Corruption("state dict: tensor shape");
    }
    std::vector<float> data(static_cast<std::size_t>(rows * cols));
    AGL_RETURN_IF_ERROR(r.GetRaw(data.data(), data.size() * sizeof(float)));
    state.emplace(std::move(key), tensor::Tensor(rows, cols, std::move(data)));
  }
  if (!r.AtEnd()) {
    return agl::Status::Corruption("state dict: trailing bytes");
  }
  return state;
}

}  // namespace agl::nn
