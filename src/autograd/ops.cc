#include "autograd/ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "tensor/edge_partition.h"
#include "tensor/kernels/kernels.h"

namespace agl::autograd {

using tensor::Tensor;

namespace {

// Folds edges [begin, end) into `dst` in 4-way blocks through the kernel
// layer: dst[0..f) += sum_p weight(p) * src(p)[0..f). `weight` and `src`
// are evaluated once per edge; the tail shorter than a block goes through
// axpy_row. Shared by the gated/attention aggregation passes, whose only
// difference is how the per-edge coefficient and source row are derived.
template <typename WeightFn, typename SrcFn>
void AccumulateEdgeBlocks(const tensor::kernels::KernelTable& kt, float* dst,
                          int64_t begin, int64_t end, int64_t f,
                          WeightFn weight, SrcFn src) {
  constexpr int64_t kW = tensor::kernels::kAccumulateWidth;
  int64_t p = begin;
  for (; p + kW <= end; p += kW) {
    const float w[kW] = {weight(p), weight(p + 1), weight(p + 2),
                         weight(p + 3)};
    const float* srcs[kW] = {src(p), src(p + 1), src(p + 2), src(p + 3)};
    kt.scaled_accumulate(dst, srcs, w, f);
  }
  for (; p < end; ++p) kt.axpy_row(dst, src(p), weight(p), f);
}

}  // namespace

// ---------------------------------------------------------------------------
// Dense algebra
// ---------------------------------------------------------------------------

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor out = tensor::MatMul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return Variable::Op(
      std::move(out), {a, b},
      [an, bn](Node* self) {
        const Tensor& g = self->grad();
        if (an->requires_grad()) {
          // dA = g @ B^T
          an->AccumulateGrad(tensor::MatMulTransB(g, bn->value()));
        }
        if (bn->requires_grad()) {
          // dB = A^T @ g
          bn->AccumulateGrad(tensor::MatMulTransA(an->value(), g));
        }
      },
      "matmul");
}

Variable Add(const Variable& a, const Variable& b) {
  Tensor out = tensor::Add(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return Variable::Op(
      std::move(out), {a, b},
      [an, bn](Node* self) {
        if (an->requires_grad()) an->AccumulateGrad(self->grad());
        if (bn->requires_grad()) bn->AccumulateGrad(self->grad());
      },
      "add");
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor out = tensor::Sub(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return Variable::Op(
      std::move(out), {a, b},
      [an, bn](Node* self) {
        if (an->requires_grad()) an->AccumulateGrad(self->grad());
        if (bn->requires_grad()) {
          Tensor neg = self->grad();
          neg.Scale(-1.f);
          bn->AccumulateGrad(neg);
        }
      },
      "sub");
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor out = tensor::Mul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return Variable::Op(
      std::move(out), {a, b},
      [an, bn](Node* self) {
        if (an->requires_grad()) {
          an->AccumulateGrad(tensor::Mul(self->grad(), bn->value()));
        }
        if (bn->requires_grad()) {
          bn->AccumulateGrad(tensor::Mul(self->grad(), an->value()));
        }
      },
      "mul");
}

Variable AddBias(const Variable& a, const Variable& bias) {
  Tensor out = tensor::AddRowBroadcast(a.value(), bias.value());
  auto an = a.node();
  auto bn = bias.node();
  return Variable::Op(
      std::move(out), {a, bias},
      [an, bn](Node* self) {
        const Tensor& g = self->grad();
        if (an->requires_grad()) an->AccumulateGrad(g);
        if (bn->requires_grad()) {
          const auto& kt = tensor::kernels::ActiveKernels();
          Tensor col(1, g.cols());
          for (int64_t i = 0; i < g.rows(); ++i) {
            kt.axpy_row(col.row(0), g.row(i), 1.f, g.cols());
          }
          bn->AccumulateGrad(col);
        }
      },
      "add_bias");
}

Variable Scale(const Variable& a, float alpha) {
  Tensor out = a.value();
  out.Scale(alpha);
  auto an = a.node();
  return Variable::Op(
      std::move(out), {a},
      [an, alpha](Node* self) {
        if (an->requires_grad()) {
          Tensor g = self->grad();
          g.Scale(alpha);
          an->AccumulateGrad(g);
        }
      },
      "scale");
}

Variable ConcatCols(const Variable& a, const Variable& b) {
  AGL_CHECK_EQ(a.rows(), b.rows());
  const int64_t ca = a.cols(), cb = b.cols();
  Tensor out(a.rows(), ca + cb);
  for (int64_t i = 0; i < a.rows(); ++i) {
    std::copy(a.value().row(i), a.value().row(i) + ca, out.row(i));
    std::copy(b.value().row(i), b.value().row(i) + cb, out.row(i) + ca);
  }
  auto an = a.node();
  auto bn = b.node();
  return Variable::Op(
      std::move(out), {a, b},
      [an, bn, ca, cb](Node* self) {
        const Tensor& g = self->grad();
        if (an->requires_grad()) {
          Tensor ga(g.rows(), ca);
          for (int64_t i = 0; i < g.rows(); ++i) {
            std::copy(g.row(i), g.row(i) + ca, ga.row(i));
          }
          an->AccumulateGrad(ga);
        }
        if (bn->requires_grad()) {
          Tensor gb(g.rows(), cb);
          for (int64_t i = 0; i < g.rows(); ++i) {
            std::copy(g.row(i) + ca, g.row(i) + ca + cb, gb.row(i));
          }
          bn->AccumulateGrad(gb);
        }
      },
      "concat_cols");
}

Variable GatherRows(const Variable& a, std::vector<int64_t> indices) {
  Tensor out = a.value().GatherRows(indices);
  auto an = a.node();
  auto idx = std::make_shared<std::vector<int64_t>>(std::move(indices));
  return Variable::Op(
      std::move(out), {a},
      [an, idx](Node* self) {
        if (!an->requires_grad()) return;
        const Tensor& g = self->grad();
        Tensor ga(an->value().rows(), an->value().cols());
        for (std::size_t i = 0; i < idx->size(); ++i) {
          float* dst = ga.row((*idx)[i]);
          const float* src = g.row(static_cast<int64_t>(i));
          for (int64_t j = 0; j < g.cols(); ++j) dst[j] += src[j];
        }
        an->AccumulateGrad(ga);
      },
      "gather_rows");
}

// ---------------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------------

namespace {

// Builds an elementwise op where the local derivative only depends on the
// input and output values.
Variable Elementwise(const Variable& a, const char* name,
                     float (*fwd)(float),
                     float (*dfn)(float /*x*/, float /*y*/)) {
  Tensor out = tensor::Map(a.value(), fwd);
  auto an = a.node();
  auto self_holder = std::make_shared<Tensor>(out);
  return Variable::Op(
      std::move(out), {a},
      [an, dfn, self_holder](Node* self) {
        if (!an->requires_grad()) return;
        const Tensor& g = self->grad();
        const Tensor& x = an->value();
        Tensor ga(g.rows(), g.cols());
        for (int64_t i = 0; i < g.size(); ++i) {
          ga.data()[i] =
              g.data()[i] * dfn(x.data()[i], self_holder->data()[i]);
        }
        an->AccumulateGrad(ga);
      },
      name);
}

}  // namespace

Variable Relu(const Variable& a) {
  return Elementwise(
      a, "relu", [](float x) { return x > 0.f ? x : 0.f; },
      [](float x, float) { return x > 0.f ? 1.f : 0.f; });
}

Variable LeakyRelu(const Variable& a, float slope) {
  Tensor out = tensor::Map(a.value(), [slope](float x) {
    return x > 0.f ? x : slope * x;
  });
  auto an = a.node();
  return Variable::Op(
      std::move(out), {a},
      [an, slope](Node* self) {
        if (!an->requires_grad()) return;
        const Tensor& g = self->grad();
        const Tensor& x = an->value();
        Tensor ga(g.rows(), g.cols());
        for (int64_t i = 0; i < g.size(); ++i) {
          ga.data()[i] = g.data()[i] * (x.data()[i] > 0.f ? 1.f : slope);
        }
        an->AccumulateGrad(ga);
      },
      "leaky_relu");
}

Variable Elu(const Variable& a, float alpha) {
  Tensor out = tensor::Map(a.value(), [alpha](float x) {
    return x > 0.f ? x : alpha * (std::exp(x) - 1.f);
  });
  auto an = a.node();
  auto out_copy = std::make_shared<Tensor>(out);
  return Variable::Op(
      std::move(out), {a},
      [an, alpha, out_copy](Node* self) {
        if (!an->requires_grad()) return;
        const Tensor& g = self->grad();
        const Tensor& x = an->value();
        Tensor ga(g.rows(), g.cols());
        for (int64_t i = 0; i < g.size(); ++i) {
          const float d =
              x.data()[i] > 0.f ? 1.f : out_copy->data()[i] + alpha;
          ga.data()[i] = g.data()[i] * d;
        }
        an->AccumulateGrad(ga);
      },
      "elu");
}

Variable Sigmoid(const Variable& a) {
  return Elementwise(
      a, "sigmoid", [](float x) { return 1.f / (1.f + std::exp(-x)); },
      [](float, float y) { return y * (1.f - y); });
}

Variable Tanh(const Variable& a) {
  return Elementwise(
      a, "tanh", [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.f - y * y; });
}

Variable Dropout(const Variable& a, float p, bool training, Rng* rng) {
  if (!training || p <= 0.f) return a;
  AGL_CHECK_LT(p, 1.f);
  const float keep = 1.f - p;
  auto mask = std::make_shared<Tensor>(a.rows(), a.cols());
  Tensor out(a.rows(), a.cols());
  for (int64_t i = 0; i < a.value().size(); ++i) {
    const float m = rng->Bernoulli(keep) ? 1.f / keep : 0.f;
    mask->data()[i] = m;
    out.data()[i] = a.value().data()[i] * m;
  }
  auto an = a.node();
  return Variable::Op(
      std::move(out), {a},
      [an, mask](Node* self) {
        if (!an->requires_grad()) return;
        an->AccumulateGrad(tensor::Mul(self->grad(), *mask));
      },
      "dropout");
}

// ---------------------------------------------------------------------------
// Reductions & losses
// ---------------------------------------------------------------------------

Variable Sum(const Variable& a) {
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(a.value().Sum());
  auto an = a.node();
  return Variable::Op(
      std::move(out), {a},
      [an](Node* self) {
        if (!an->requires_grad()) return;
        Tensor g(an->value().rows(), an->value().cols());
        g.Fill(self->grad().at(0, 0));
        an->AccumulateGrad(g);
      },
      "sum");
}

Variable Mean(const Variable& a) {
  const float inv = 1.f / static_cast<float>(std::max<int64_t>(1, a.value().size()));
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(a.value().Sum()) * inv;
  auto an = a.node();
  return Variable::Op(
      std::move(out), {a},
      [an, inv](Node* self) {
        if (!an->requires_grad()) return;
        Tensor g(an->value().rows(), an->value().cols());
        g.Fill(self->grad().at(0, 0) * inv);
        an->AccumulateGrad(g);
      },
      "mean");
}

Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int64_t>& labels) {
  AGL_CHECK_EQ(logits.rows(), static_cast<int64_t>(labels.size()));
  const Tensor lsm = tensor::RowLogSoftmax(logits.value());
  const int64_t n = logits.rows();
  double loss = 0;
  for (int64_t i = 0; i < n; ++i) {
    AGL_CHECK_GE(labels[i], 0);
    AGL_CHECK_LT(labels[i], logits.cols());
    loss -= lsm.at(i, labels[i]);
  }
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / std::max<int64_t>(1, n));

  auto ln = logits.node();
  auto labels_copy = std::make_shared<std::vector<int64_t>>(labels);
  auto softmax = std::make_shared<Tensor>(tensor::RowSoftmax(logits.value()));
  return Variable::Op(
      std::move(out), {logits},
      [ln, labels_copy, softmax, n](Node* self) {
        if (!ln->requires_grad()) return;
        const float upstream = self->grad().at(0, 0);
        Tensor g = *softmax;
        for (int64_t i = 0; i < n; ++i) g.at(i, (*labels_copy)[i]) -= 1.f;
        g.Scale(upstream / static_cast<float>(std::max<int64_t>(1, n)));
        ln->AccumulateGrad(g);
      },
      "softmax_xent");
}

Variable BceWithLogits(const Variable& logits, const Tensor& targets) {
  AGL_CHECK_EQ(logits.rows(), targets.rows());
  AGL_CHECK_EQ(logits.cols(), targets.cols());
  const Tensor& x = logits.value();
  const int64_t sz = x.size();
  double loss = 0;
  for (int64_t i = 0; i < sz; ++i) {
    const float xv = x.data()[i];
    const float t = targets.data()[i];
    // Numerically stable: max(x,0) - x*t + log(1+exp(-|x|)).
    loss += std::max(xv, 0.f) - xv * t + std::log1p(std::exp(-std::fabs(xv)));
  }
  Tensor out(1, 1);
  out.at(0, 0) = static_cast<float>(loss / std::max<int64_t>(1, sz));

  auto ln = logits.node();
  auto targets_copy = std::make_shared<Tensor>(targets);
  return Variable::Op(
      std::move(out), {logits},
      [ln, targets_copy, sz](Node* self) {
        if (!ln->requires_grad()) return;
        const float upstream = self->grad().at(0, 0);
        const Tensor& x = ln->value();
        Tensor g(x.rows(), x.cols());
        const float inv = upstream / static_cast<float>(std::max<int64_t>(1, sz));
        for (int64_t i = 0; i < sz; ++i) {
          const float sig = 1.f / (1.f + std::exp(-x.data()[i]));
          g.data()[i] = (sig - targets_copy->data()[i]) * inv;
        }
        ln->AccumulateGrad(g);
      },
      "bce_logits");
}

Variable L2Penalty(const Variable& a, float weight_decay) {
  Tensor out(1, 1);
  out.at(0, 0) = 0.5f * weight_decay * static_cast<float>(a.value().SquaredNorm());
  auto an = a.node();
  return Variable::Op(
      std::move(out), {a},
      [an, weight_decay](Node* self) {
        if (!an->requires_grad()) return;
        Tensor g = an->value();
        g.Scale(weight_decay * self->grad().at(0, 0));
        an->AccumulateGrad(g);
      },
      "l2_penalty");
}

// ---------------------------------------------------------------------------
// Graph aggregation kernels
// ---------------------------------------------------------------------------

const tensor::SparseMatrix& SharedAdjacency::transposed() const {
  common::MutexLock lock(&mu_);
  if (transposed_ == nullptr) {
    transposed_ =
        std::make_unique<tensor::SparseMatrix>(matrix_.Transposed());
  }
  return *transposed_;
}

const SharedAdjacency::TransposeIndex& SharedAdjacency::transpose_index()
    const {
  common::MutexLock lock(&mu_);
  if (transpose_index_ == nullptr) {
    auto idx = std::make_unique<TransposeIndex>();
    const auto& row_ptr = matrix_.row_ptr();
    const auto& col_idx = matrix_.col_idx();
    const int64_t cols = matrix_.cols();
    const int64_t nnz = matrix_.nnz();
    idx->row_ptr.assign(cols + 1, 0);
    for (int64_t p = 0; p < nnz; ++p) idx->row_ptr[col_idx[p] + 1]++;
    for (int64_t c = 0; c < cols; ++c) idx->row_ptr[c + 1] += idx->row_ptr[c];
    idx->dst.resize(nnz);
    idx->orig_pos.resize(nnz);
    std::vector<int64_t> cursor(idx->row_ptr.begin(), idx->row_ptr.end() - 1);
    for (int64_t r = 0; r < matrix_.rows(); ++r) {
      for (int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
        const int64_t c = col_idx[p];
        const int64_t slot = cursor[c]++;
        idx->dst[slot] = r;
        idx->orig_pos[slot] = p;
      }
    }
    transpose_index_ = std::move(idx);
  }
  return *transpose_index_;
}

Variable SpmmAggregate(const AdjacencyPtr& adj, const Variable& h,
                       const tensor::SpmmOptions& opts) {
  Tensor out = tensor::Spmm(adj->matrix(), h.value(), opts);
  auto hn = h.node();
  return Variable::Op(
      std::move(out), {h},
      [adj, hn, opts](Node* self) {
        if (!hn->requires_grad()) return;
        // dh = A^T @ dout; the transpose's rows are sources, so this pass is
        // also conflict-free under row partitioning.
        hn->AccumulateGrad(
            tensor::Spmm(adj->transposed(), self->grad(), opts));
      },
      "spmm");
}

Variable EdgeGatedAggregate(const AdjacencyPtr& adj, const Variable& h,
                            const Variable& gate,
                            const tensor::SpmmOptions& opts) {
  const tensor::SparseMatrix& a = adj->matrix();
  AGL_CHECK_EQ(a.cols(), h.rows());
  AGL_CHECK_EQ(gate.rows(), a.nnz());
  AGL_CHECK_EQ(gate.cols(), 1);

  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  const int64_t n = a.rows();
  const int64_t f = h.cols();
  const Tensor& hv = h.value();
  const Tensor& gv = gate.value();

  Tensor out(n, f);
  const auto& kt = tensor::kernels::ActiveKernels();
  auto forward_span = [&](tensor::RowSpan span) {
    for (int64_t i = span.row_begin; i < span.row_end; ++i) {
      AccumulateEdgeBlocks(
          kt, out.row(i), row_ptr[i], row_ptr[i + 1], f,
          [&](int64_t p) { return values[p] * gv.at(p, 0); },
          [&](int64_t p) { return hv.row(col_idx[p]); });
    }
  };
  if (opts.num_threads <= 1 || n < 2) {
    forward_span({0, n});
  } else {
    const auto spans = tensor::PartitionRowsByNnz(row_ptr, n,
                                                  opts.num_threads);
    GlobalThreadPool().ParallelFor(spans.size(), [&](std::size_t i) {
      forward_span(spans[i]);
    });
  }

  auto hn = h.node();
  auto gn = gate.node();
  return Variable::Op(
      std::move(out), {h, gate},
      [adj, hn, gn, opts](Node* self) {
        const tensor::SparseMatrix& a = adj->matrix();
        const auto& row_ptr = a.row_ptr();
        const auto& col_idx = a.col_idx();
        const auto& values = a.values();
        const int64_t f = hn->value().cols();
        const Tensor& g = self->grad();
        const Tensor& hv = hn->value();
        const Tensor& gv = gn->value();

        // dgate_p = w_p * (dout_{dst(p)} . h_{src(p)}) — per-edge slots
        // are exclusive, parallel over destination rows.
        const auto& kt = tensor::kernels::ActiveKernels();
        if (gn->requires_grad()) {
          Tensor dgate(a.nnz(), 1);
          auto pass = [&](tensor::RowSpan span) {
            for (int64_t i = span.row_begin; i < span.row_end; ++i) {
              const float* grow = g.row(i);
              for (int64_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
                dgate.at(p, 0) =
                    values[p] * kt.dot(grow, hv.row(col_idx[p]), f);
              }
            }
          };
          if (opts.num_threads <= 1 || a.rows() < 2) {
            pass({0, a.rows()});
          } else {
            const auto spans = tensor::PartitionRowsByNnz(
                row_ptr, a.rows(), opts.num_threads);
            GlobalThreadPool().ParallelFor(spans.size(), [&](std::size_t i) {
              pass(spans[i]);
            });
          }
          gn->AccumulateGrad(dgate);
        }

        // dh_j = sum over out-edges p of j: w_p * gate_p * dout_{dst(p)} —
        // conflict-free over transpose rows.
        if (hn->requires_grad()) {
          const auto& tix = adj->transpose_index();
          Tensor dh(hv.rows(), hv.cols());
          auto pass = [&](tensor::RowSpan span) {
            for (int64_t jrow = span.row_begin; jrow < span.row_end;
                 ++jrow) {
              AccumulateEdgeBlocks(
                  kt, dh.row(jrow), tix.row_ptr[jrow], tix.row_ptr[jrow + 1],
                  f,
                  [&](int64_t q) {
                    const int64_t p = tix.orig_pos[q];
                    return values[p] * gv.at(p, 0);
                  },
                  [&](int64_t q) { return g.row(tix.dst[q]); });
            }
          };
          if (opts.num_threads <= 1 || hv.rows() < 2) {
            pass({0, hv.rows()});
          } else {
            const auto spans = tensor::PartitionRowsByNnz(
                tix.row_ptr, hv.rows(), opts.num_threads);
            GlobalThreadPool().ParallelFor(spans.size(), [&](std::size_t i) {
              pass(spans[i]);
            });
          }
          hn->AccumulateGrad(dh);
        }
      },
      "edge_gated_aggregate");
}

Variable GatAggregate(const AdjacencyPtr& adj, const Variable& h,
                      const Variable& al, const Variable& ar, float slope,
                      const tensor::SpmmOptions& opts) {
  const tensor::SparseMatrix& a = adj->matrix();
  AGL_CHECK_EQ(a.cols(), h.rows());
  AGL_CHECK_EQ(al.rows(), a.rows());
  AGL_CHECK_EQ(ar.rows(), h.rows());
  AGL_CHECK_EQ(al.cols(), 1);
  AGL_CHECK_EQ(ar.cols(), 1);

  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const int64_t n = a.rows();
  const int64_t f = h.cols();
  const int64_t nnz = a.nnz();

  // Per-edge attention weights and LeakyReLU derivative, saved for
  // backward. Deliberately uninitialized: every edge belongs to exactly one
  // destination row and the forward pass writes all nnz slots.
  auto alpha = std::shared_ptr<float[]>(new float[static_cast<std::size_t>(nnz)]);
  auto dz_factor = std::shared_ptr<float[]>(new float[static_cast<std::size_t>(nnz)]);

  Tensor out(n, f);
  const Tensor& hv = h.value();
  const Tensor& alv = al.value();
  const Tensor& arv = ar.value();

  // Per row: one gat_edge_softmax call fuses the score / max / exp /
  // normalize passes, leaving attention weights in the per-edge alpha
  // slots (contiguous within a CSR row); one spmm_row call then does the
  // weighted neighbour sum with the output row held in registers.
  const auto& kt = tensor::kernels::ActiveKernels();
  auto forward_span = [&](tensor::RowSpan span) {
    for (int64_t i = span.row_begin; i < span.row_end; ++i) {
      const int64_t begin = row_ptr[i], end = row_ptr[i + 1];
      if (begin == end) continue;
      kt.gat_edge_softmax(col_idx.data() + begin, end - begin, alv.at(i, 0),
                          arv.data(), slope, alpha.get() + begin,
                          dz_factor.get() + begin);
      // The attention weights are contiguous per CSR row, so the weighted
      // neighbour sum is exactly one spmm_row call.
      kt.spmm_row(out.row(i), hv.data(), col_idx.data() + begin,
                  alpha.get() + begin, end - begin, f);
    }
  };

  if (opts.num_threads <= 1 || n < 2) {
    forward_span({0, n});
  } else {
    const auto spans =
        tensor::PartitionRowsByNnz(row_ptr, n, opts.num_threads);
    GlobalThreadPool().ParallelFor(spans.size(), [&](std::size_t i) {
      forward_span(spans[i]);
    });
  }

  auto hn = h.node();
  auto aln = al.node();
  auto arn = ar.node();
  return Variable::Op(
      std::move(out), {h, al, ar},
      [adj, hn, aln, arn, alpha, dz_factor, opts](Node* self) {
        const tensor::SparseMatrix& a = adj->matrix();
        const auto& row_ptr = a.row_ptr();
        const auto& col_idx = a.col_idx();
        const int64_t n = a.rows();
        const int64_t f = hn->value().cols();
        const Tensor& g = self->grad();
        const Tensor& hv = hn->value();

        const auto& kt = tensor::kernels::ActiveKernels();

        // Pass 1 (parallel over destination rows): per-edge dz and dal.
        std::vector<float> dz(a.nnz(), 0.f);
        Tensor dal(n, 1);
        auto pass1 = [&](tensor::RowSpan span) {
          for (int64_t i = span.row_begin; i < span.row_end; ++i) {
            const int64_t begin = row_ptr[i], end = row_ptr[i + 1];
            if (begin == end) continue;
            const float* grow = g.row(i);
            // dalpha_ij = dout_i . h_j ; r_i = sum_k alpha_ik dalpha_ik
            float r = 0.f;
            for (int64_t p = begin; p < end; ++p) {
              const float dot = kt.dot(grow, hv.row(col_idx[p]), f);
              dz[p] = dot;  // hold dalpha temporarily
              r += alpha[p] * dot;
            }
            float dal_i = 0.f;
            for (int64_t p = begin; p < end; ++p) {
              const float ds = alpha[p] * (dz[p] - r);
              dz[p] = ds * dz_factor[p];
              dal_i += dz[p];
            }
            dal.at(i, 0) = dal_i;
          }
        };
        auto run_spans = [&](auto body, const std::vector<int64_t>& rp,
                             int64_t rows) {
          if (opts.num_threads <= 1 || rows < 2) {
            body({0, rows});
            return;
          }
          const auto spans =
              tensor::PartitionRowsByNnz(rp, rows, opts.num_threads);
          GlobalThreadPool().ParallelFor(spans.size(), [&](std::size_t i) {
            body(spans[i]);
          });
        };
        run_spans(pass1, row_ptr, n);

        // Pass 2 (parallel over source rows via the transpose index):
        // dh_j = sum_i alpha_ij * dout_i ; dar_j = sum_i dz_ij.
        const bool need_h = hn->requires_grad();
        const bool need_ar = arn->requires_grad();
        Tensor dh(hv.rows(), hv.cols());
        Tensor dar(hv.rows(), 1);
        if (need_h || need_ar) {
          const auto& tix = adj->transpose_index();
          auto pass2 = [&](tensor::RowSpan span) {
            for (int64_t jrow = span.row_begin; jrow < span.row_end; ++jrow) {
              const int64_t qbegin = tix.row_ptr[jrow];
              const int64_t qend = tix.row_ptr[jrow + 1];
              AccumulateEdgeBlocks(
                  kt, dh.row(jrow), qbegin, qend, f,
                  [&](int64_t q) { return alpha[tix.orig_pos[q]]; },
                  [&](int64_t q) { return g.row(tix.dst[q]); });
              float dar_j = 0.f;
              for (int64_t q = qbegin; q < qend; ++q) {
                dar_j += dz[tix.orig_pos[q]];
              }
              dar.at(jrow, 0) = dar_j;
            }
          };
          run_spans(pass2, adj->transpose_index().row_ptr, hv.rows());
        }

        if (need_h) hn->AccumulateGrad(dh);
        if (aln->requires_grad()) aln->AccumulateGrad(dal);
        if (need_ar) arn->AccumulateGrad(dar);
      },
      "gat_aggregate");
}

}  // namespace agl::autograd
