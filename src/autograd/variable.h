// Tape-based reverse-mode automatic differentiation over dense Tensors.
//
// This is the training-engine substrate: the paper trains GNNs on a
// TensorFlow-like engine; we provide the minimal equivalent — an eagerly
// built computation graph of Nodes, each knowing how to push its output
// gradient back into its inputs. Backward() runs the tape in reverse
// topological order.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace agl::autograd {

/// One vertex of the computation graph.
class Node {
 public:
  Node(tensor::Tensor value, bool requires_grad, std::string op_name)
      : value_(std::move(value)),
        requires_grad_(requires_grad),
        op_name_(std::move(op_name)) {}

  const tensor::Tensor& value() const { return value_; }
  tensor::Tensor& mutable_value() { return value_; }

  bool requires_grad() const { return requires_grad_; }
  const std::string& op_name() const { return op_name_; }

  /// Gradient accumulator, lazily allocated to the value's shape.
  tensor::Tensor& grad();
  bool has_grad() const { return !grad_.empty(); }
  void ZeroGrad();

  /// Adds `g` into the gradient accumulator.
  void AccumulateGrad(const tensor::Tensor& g);

  const std::vector<std::shared_ptr<Node>>& inputs() const { return inputs_; }

 private:
  friend class Variable;
  friend void Backward(const class Variable& root);

  tensor::Tensor value_;
  tensor::Tensor grad_;
  bool requires_grad_;
  std::string op_name_;
  std::vector<std::shared_ptr<Node>> inputs_;
  // Invoked once during Backward with this node's grad fully accumulated.
  std::function<void(Node*)> backward_fn_;
};

/// Shared handle to a Node; the user-facing autograd value type.
class Variable {
 public:
  Variable() = default;
  /// Wraps a constant (no gradient).
  explicit Variable(tensor::Tensor value)
      : node_(std::make_shared<Node>(std::move(value), false, "const")) {}

  /// Creates a leaf parameter that accumulates gradients.
  static Variable Parameter(tensor::Tensor value) {
    Variable v;
    v.node_ = std::make_shared<Node>(std::move(value), true, "param");
    return v;
  }

  /// Creates a constant input (gradient never flows into it).
  static Variable Constant(tensor::Tensor value) {
    return Variable(std::move(value));
  }

  /// Internal: creates an op node.
  static Variable Op(tensor::Tensor value,
                     std::vector<Variable> inputs,
                     std::function<void(Node*)> backward_fn,
                     std::string op_name);

  bool defined() const { return node_ != nullptr; }
  const tensor::Tensor& value() const { return node_->value(); }
  tensor::Tensor& mutable_value() { return node_->mutable_value(); }
  bool requires_grad() const { return node_->requires_grad(); }
  const tensor::Tensor& grad() const { return node_->grad(); }
  void ZeroGrad() { node_->ZeroGrad(); }

  int64_t rows() const { return value().rows(); }
  int64_t cols() const { return value().cols(); }

  std::shared_ptr<Node> node() const { return node_; }

 private:
  std::shared_ptr<Node> node_;
};

/// Runs reverse-mode accumulation from `root` (seed gradient = ones, so the
/// root is normally a scalar loss).
void Backward(const Variable& root);

}  // namespace agl::autograd
