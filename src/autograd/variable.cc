#include "autograd/variable.h"

#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace agl::autograd {

tensor::Tensor& Node::grad() {
  if (grad_.empty() && value_.size() > 0) {
    grad_ = tensor::Tensor(value_.rows(), value_.cols());
  }
  return grad_;
}

void Node::ZeroGrad() {
  if (!grad_.empty()) grad_.Fill(0.f);
}

void Node::AccumulateGrad(const tensor::Tensor& g) {
  grad().Add(g);
}

Variable Variable::Op(tensor::Tensor value, std::vector<Variable> inputs,
                      std::function<void(Node*)> backward_fn,
                      std::string op_name) {
  bool requires_grad = false;
  for (const Variable& in : inputs) {
    if (in.defined() && in.requires_grad()) requires_grad = true;
  }
  Variable v;
  v.node_ = std::make_shared<Node>(std::move(value), requires_grad,
                                   std::move(op_name));
  if (requires_grad) {
    v.node_->backward_fn_ = std::move(backward_fn);
    for (Variable& in : inputs) {
      if (in.defined()) v.node_->inputs_.push_back(in.node_);
    }
  }
  return v;
}

namespace {

// Post-order DFS producing reverse-topological execution order.
void Topo(Node* node, std::unordered_set<Node*>* visited,
          std::vector<Node*>* order) {
  if (visited->count(node) > 0) return;
  visited->insert(node);
  for (const auto& in : node->inputs()) {
    if (in->requires_grad()) Topo(in.get(), visited, order);
  }
  order->push_back(node);
}

}  // namespace

void Backward(const Variable& root) {
  AGL_CHECK(root.defined());
  AGL_CHECK(root.requires_grad())
      << "Backward called on a graph with no parameters";
  Node* root_node = root.node().get();

  std::unordered_set<Node*> visited;
  std::vector<Node*> order;
  Topo(root_node, &visited, &order);

  // Clear stale gradients from a previous backward pass.
  for (Node* n : order) n->ZeroGrad();

  root_node->grad().Fill(1.f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn_) n->backward_fn_(n);
  }
}

}  // namespace agl::autograd
