// Differentiable operations over Variables: the dense ops every model needs,
// plus the two graph-specific kernels at the heart of AGL's GraphTrainer —
// sparse aggregation (SpMM) and the fused GAT edge-softmax — both of which
// run multi-threaded with the edge-partitioning strategy of §3.3.2.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "tensor/sparse.h"

namespace agl::autograd {

// ---------------------------------------------------------------------------
// Dense algebra
// ---------------------------------------------------------------------------

/// out = a @ b.
Variable MatMul(const Variable& a, const Variable& b);
/// Elementwise sum (shapes must match).
Variable Add(const Variable& a, const Variable& b);
/// Elementwise difference.
Variable Sub(const Variable& a, const Variable& b);
/// Elementwise (Hadamard) product.
Variable Mul(const Variable& a, const Variable& b);
/// Adds a [1 x C] bias row to each row of `a`.
Variable AddBias(const Variable& a, const Variable& bias);
/// out = alpha * a.
Variable Scale(const Variable& a, float alpha);
/// Column-wise concatenation [a | b].
Variable ConcatCols(const Variable& a, const Variable& b);
/// Gathers rows of `a` at `indices` (the target-node lookup of Figure 6).
Variable GatherRows(const Variable& a, std::vector<int64_t> indices);

// ---------------------------------------------------------------------------
// Activations & regularization
// ---------------------------------------------------------------------------

Variable Relu(const Variable& a);
Variable LeakyRelu(const Variable& a, float slope = 0.2f);
Variable Elu(const Variable& a, float alpha = 1.0f);
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
/// Inverted dropout; identity when `training` is false or p == 0.
Variable Dropout(const Variable& a, float p, bool training, Rng* rng);

// ---------------------------------------------------------------------------
// Reductions & losses (all produce a [1 x 1] scalar)
// ---------------------------------------------------------------------------

Variable Sum(const Variable& a);
Variable Mean(const Variable& a);
/// Mean softmax cross-entropy against integer class labels (one per row).
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int64_t>& labels);
/// Mean binary cross-entropy with logits against {0,1} targets, elementwise
/// over the whole matrix (multi-label protocol used for PPI and UUG).
Variable BceWithLogits(const Variable& logits, const tensor::Tensor& targets);
/// 0.5 * weight_decay * ||a||^2.
Variable L2Penalty(const Variable& a, float weight_decay);

// ---------------------------------------------------------------------------
// Graph aggregation kernels
// ---------------------------------------------------------------------------

/// Sparse adjacency shared by forward and backward. The transpose (needed by
/// the backward pass, and itself row-partitionable so the backward is also
/// conflict-free) is built lazily once.
class SharedAdjacency {
 public:
  explicit SharedAdjacency(tensor::SparseMatrix matrix)
      : matrix_(std::move(matrix)) {}

  /// Edge index of the transpose aligned with the forward CSR: for each
  /// source row, the destinations of its out-edges and the position of each
  /// edge in the forward CSR arrays. Lets the backward pass scatter into
  /// source rows without conflicts.
  struct TransposeIndex {
    std::vector<int64_t> row_ptr;   // length cols+1 (per source node)
    std::vector<int64_t> dst;       // destination of each edge
    std::vector<int64_t> orig_pos;  // index into forward col_idx()/values()
  };

  const tensor::SparseMatrix& matrix() const { return matrix_; }
  const tensor::SparseMatrix& transposed() const EXCLUDES(mu_);
  const TransposeIndex& transpose_index() const EXCLUDES(mu_);

 private:
  tensor::SparseMatrix matrix_;
  // Lazily-built-then-immutable: the pointers are only written (once)
  // under mu_, and the returned references alias pointees that are never
  // mutated after publication.
  mutable std::unique_ptr<tensor::SparseMatrix> transposed_ GUARDED_BY(mu_);
  mutable std::unique_ptr<TransposeIndex> transpose_index_ GUARDED_BY(mu_);
  mutable common::Mutex mu_;
};

using AdjacencyPtr = std::shared_ptr<SharedAdjacency>;

/// out = A @ h. Forward partitions destination rows across `opts.num_threads`
/// threads; backward computes dh = A^T @ dout partitioned over A^T rows.
Variable SpmmAggregate(const AdjacencyPtr& adj, const Variable& h,
                       const tensor::SpmmOptions& opts = {});

/// Edge-featured aggregation (Equation 1's {e_vu} term): for each edge
/// (i <- j) with per-edge gate g_p (a [nnz x 1] column aligned with the
/// adjacency's CSR order),
///   out_i = sum_p  w_p * g_p * h_{src(p)}
/// Gradients flow into both `h` and `gate`, so a model can *learn* the
/// gate from edge features (see gnn::EdgeGcnLayer). Forward partitions
/// destination rows; backward uses the transpose index — both
/// conflict-free.
Variable EdgeGatedAggregate(const AdjacencyPtr& adj, const Variable& h,
                            const Variable& gate,
                            const tensor::SpmmOptions& opts = {});

/// Fused GAT aggregation: for every destination i with in-edges (i <- j),
///   z_ij   = LeakyReLU(al_i + ar_j, slope)
///   alpha  = softmax_j(z_ij)
///   out_i  = sum_j alpha_ij * h_j
/// `h` is [n x f] (typically W @ features), `al`/`ar` are [n x 1] attention
/// projections. Rows with no in-edges produce zeros. Both passes are
/// conflict-free parallel: forward over destination rows, backward source-
/// side terms over transpose rows.
Variable GatAggregate(const AdjacencyPtr& adj, const Variable& h,
                      const Variable& al, const Variable& ar,
                      float slope = 0.2f, const tensor::SpmmOptions& opts = {});

}  // namespace agl::autograd
