// Neighbor sampling framework (paper §3.2.2).
//
// GraphFlat bounds the size of k-hop neighborhoods around "hub" nodes by
// sampling a portion of each node's in-edges before merging. The framework
// is pluggable; the paper names uniform and weighted sampling explicitly.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace agl::sampling {

enum class Strategy {
  kNone = 0,     // keep every neighbor
  kUniform,      // uniform without replacement
  kWeighted,     // probability proportional to edge weight, w/o replacement
  kTopK,         // deterministic: the k largest edge weights
};

/// Parses "none" / "uniform" / "weighted" / "topk".
agl::Result<Strategy> ParseStrategy(const std::string& name);
const char* StrategyName(Strategy s);

struct SamplerConfig {
  Strategy strategy = Strategy::kNone;
  /// Max in-edge neighbors kept per node; <= 0 means unlimited.
  int64_t max_neighbors = 0;
};

/// Selects which of `n` candidate edges to keep given their weights.
/// Implementations must be stateless w.r.t. calls (Rng carries all state) so
/// reducers can share one sampler across shuffle keys.
class NeighborSampler {
 public:
  virtual ~NeighborSampler() = default;

  /// Returns indices (into the candidate list) of the kept edges, in
  /// ascending order. `weights` supplies one non-negative weight per edge.
  virtual std::vector<std::size_t> Sample(std::span<const float> weights,
                                          Rng* rng) const = 0;

  virtual Strategy strategy() const = 0;
};

/// Builds a sampler for `config`; kNone returns a pass-through sampler.
std::unique_ptr<NeighborSampler> MakeSampler(const SamplerConfig& config);

}  // namespace agl::sampling
