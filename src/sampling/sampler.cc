#include "sampling/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace agl::sampling {

agl::Result<Strategy> ParseStrategy(const std::string& name) {
  if (name == "none") return Strategy::kNone;
  if (name == "uniform") return Strategy::kUniform;
  if (name == "weighted") return Strategy::kWeighted;
  if (name == "topk") return Strategy::kTopK;
  return agl::Status::InvalidArgument("unknown sampling strategy: " + name);
}

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kNone:
      return "none";
    case Strategy::kUniform:
      return "uniform";
    case Strategy::kWeighted:
      return "weighted";
    case Strategy::kTopK:
      return "topk";
  }
  return "?";
}

namespace {

std::vector<std::size_t> AllIndices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

class PassThroughSampler : public NeighborSampler {
 public:
  std::vector<std::size_t> Sample(std::span<const float> weights,
                                  Rng*) const override {
    return AllIndices(weights.size());
  }
  Strategy strategy() const override { return Strategy::kNone; }
};

class UniformSampler : public NeighborSampler {
 public:
  explicit UniformSampler(int64_t k) : k_(k) {}

  std::vector<std::size_t> Sample(std::span<const float> weights,
                                  Rng* rng) const override {
    const std::size_t n = weights.size();
    if (k_ <= 0 || static_cast<int64_t>(n) <= k_) return AllIndices(n);
    std::vector<std::size_t> idx =
        rng->SampleWithoutReplacement(n, static_cast<std::size_t>(k_));
    std::sort(idx.begin(), idx.end());
    return idx;
  }
  Strategy strategy() const override { return Strategy::kUniform; }

 private:
  int64_t k_;
};

class WeightedSampler : public NeighborSampler {
 public:
  explicit WeightedSampler(int64_t k) : k_(k) {}

  std::vector<std::size_t> Sample(std::span<const float> weights,
                                  Rng* rng) const override {
    const std::size_t n = weights.size();
    if (k_ <= 0 || static_cast<int64_t>(n) <= k_) return AllIndices(n);
    // Efraimidis-Spirakis reservoir: key = U^(1/w); take the k largest keys.
    // Zero-weight edges can only be chosen after all positive ones.
    std::vector<std::pair<double, std::size_t>> keyed(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double w = std::max(1e-12, static_cast<double>(weights[i]));
      keyed[i] = {std::pow(rng->Uniform(1e-12, 1.0), 1.0 / w), i};
    }
    std::partial_sort(keyed.begin(), keyed.begin() + k_, keyed.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    std::vector<std::size_t> idx(k_);
    for (int64_t i = 0; i < k_; ++i) idx[i] = keyed[i].second;
    std::sort(idx.begin(), idx.end());
    return idx;
  }
  Strategy strategy() const override { return Strategy::kWeighted; }

 private:
  int64_t k_;
};

class TopKSampler : public NeighborSampler {
 public:
  explicit TopKSampler(int64_t k) : k_(k) {}

  std::vector<std::size_t> Sample(std::span<const float> weights,
                                  Rng*) const override {
    const std::size_t n = weights.size();
    if (k_ <= 0 || static_cast<int64_t>(n) <= k_) return AllIndices(n);
    std::vector<std::size_t> idx = AllIndices(n);
    // Stable tie-break on index keeps the result deterministic.
    std::partial_sort(idx.begin(), idx.begin() + k_, idx.end(),
                      [&](std::size_t a, std::size_t b) {
                        if (weights[a] != weights[b]) {
                          return weights[a] > weights[b];
                        }
                        return a < b;
                      });
    idx.resize(k_);
    std::sort(idx.begin(), idx.end());
    return idx;
  }
  Strategy strategy() const override { return Strategy::kTopK; }

 private:
  int64_t k_;
};

}  // namespace

std::unique_ptr<NeighborSampler> MakeSampler(const SamplerConfig& config) {
  switch (config.strategy) {
    case Strategy::kNone:
      return std::make_unique<PassThroughSampler>();
    case Strategy::kUniform:
      return std::make_unique<UniformSampler>(config.max_neighbors);
    case Strategy::kWeighted:
      return std::make_unique<WeightedSampler>(config.max_neighbors);
    case Strategy::kTopK:
      return std::make_unique<TopKSampler>(config.max_neighbors);
  }
  return std::make_unique<PassThroughSampler>();
}

}  // namespace agl::sampling
