// Table 2 — Summary of datasets.
//
// Paper's row set: #Nodes, #Edges, #Node feature, #Classes, #Train set,
// #Validation set, #Test set for Cora / PPI / UUG. Our generators print
// the same rows for the synthetic stand-ins (see DESIGN.md for the scale
// substitution: UUG runs at 2e4 nodes here, not 6.23e9).

#include <cstdio>

#include "data/dataset.h"

int main() {
  using namespace agl::data;

  Dataset cora = MakeCoraLike({});
  PpiLikeOptions popts;  // defaults: 24 graphs
  Dataset ppi = MakePpiLike(popts);
  Dataset uug = MakeUugLike({});

  auto row = [](const char* name, const Dataset& ds, const char* classes,
                const char* extra) {
    std::printf("%-16s %12lld %12lld %10lld %12s %s\n", name,
                static_cast<long long>(ds.num_nodes()),
                static_cast<long long>(ds.num_edges()),
                static_cast<long long>(ds.feature_dim), classes, extra);
  };

  std::printf("Table 2: Summary of datasets (synthetic stand-ins)\n");
  std::printf("%-16s %12s %12s %10s %12s %s\n", "dataset", "#nodes",
              "#edges", "#features", "#classes", "splits (train/val/test)");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%zu/%zu/%zu", cora.train_ids.size(),
                cora.val_ids.size(), cora.test_ids.size());
  row("cora-like", cora, "7", buf);
  std::snprintf(buf, sizeof(buf), "%zu/%zu/%zu (by graph: 20/2/2)",
                ppi.train_ids.size(), ppi.val_ids.size(),
                ppi.test_ids.size());
  row("ppi-like(24g)", ppi, "121(ml)", buf);
  std::snprintf(buf, sizeof(buf), "%zu/%zu/%zu", uug.train_ids.size(),
                uug.val_ids.size(), uug.test_ids.size());
  row("uug-like", uug, "2", buf);

  std::printf(
      "\npaper reference: Cora 2708/5429/1433/7; PPI 56944/818716/50/121; "
      "UUG 6.23e9/3.38e11/656/2 (scaled here per DESIGN.md)\n");
  return 0;
}
