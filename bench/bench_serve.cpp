// Always-on inference service under load — sustained requests/sec and tail
// latency of the admission + coalescing + persistent-store serving loop,
// with and without a concurrent mutation stream.
//
// Shape expectation: the steady phase is served mostly out of the
// embedding store (every request after the warm-up overlaps the same
// K-hop halos), so its p99 tracks one coalesced pipeline pass over the
// *misses*, not over the full request. The mutation phase repeatedly
// invalidates the dirtied (node, round) entries, so its throughput sits
// below steady state but far above cold recompute — the invalidation is
// surgical, not a cache flush.
//
// RESULT lines (seconds, lower is better) feed
// scripts/check_bench_regression.py; requests/sec are printed for the
// human-readable table only, so the gate's larger-is-slower convention
// holds for every entry.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "agl/agl.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "mr/local_dfs.h"

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main() {
  using namespace agl;

  data::UugLikeOptions opts;
  opts.num_nodes = 1200;
  opts.feature_dim = 32;
  opts.attach_edges = 4;
  opts.train_size = 420;
  opts.val_size = 150;
  opts.test_size = 150;
  data::Dataset ds = data::MakeUugLike(opts);

  gnn::ModelConfig model;
  model.type = gnn::ModelType::kGraphSage;
  model.num_layers = 2;
  model.in_dim = ds.feature_dim;
  model.hidden_dim = 16;
  model.out_dim = 2;
  gnn::GnnModel net(model);
  const auto state = net.StateDict();

  // Fresh scratch root: a leftover published store from a previous run
  // would warm-start the service and skew the steady phase vs baseline.
  std::error_code ec;
  std::filesystem::remove_all("/tmp/agl_bench_serve_dfs", ec);
  auto dfs = mr::LocalDfs::Open("/tmp/agl_bench_serve_dfs");
  if (!dfs.ok()) {
    std::fprintf(stderr, "dfs: %s\n", dfs.status().ToString().c_str());
    return 1;
  }

  serve::ServeConfig config;
  config.infer.model = model;
  config.infer.batch_slices = 4;
  config.max_batch_targets = 512;
  auto svc = Run(config, state, ds.nodes, ds.edges, &*dfs);
  if (!svc.ok()) {
    std::fprintf(stderr, "serve: %s\n", svc.status().ToString().c_str());
    return 1;
  }
  serve::InferenceService& service = **svc;

  std::vector<flat::NodeId> all;
  for (const auto& n : ds.nodes) all.push_back(n.id);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 60;
  constexpr int kTargetsPerRequest = 24;
  std::printf(
      "UUG-like graph: %lld nodes, %lld edges; 2-layer GraphSAGE service, "
      "%d clients x %d requests x %d targets\n\n",
      static_cast<long long>(ds.num_nodes()),
      static_cast<long long>(ds.num_edges()), kClients, kRequestsPerClient,
      kTargetsPerRequest);

  // Warm the store once so both measured phases start from the same
  // serving state (the steady phase measures warm serving, not fill).
  {
    auto warm = service.Score(all);
    if (!warm.ok()) {
      std::fprintf(stderr, "warm-up: %s\n",
                   warm.status().ToString().c_str());
      return 1;
    }
  }

  // A mutation batch that cancels itself out: toggling one absent edge and
  // rewriting one node's features back and forth keeps the graph at its
  // baseline between batches while exercising apply + model-aware
  // invalidation on every application.
  std::set<std::pair<flat::NodeId, flat::NodeId>> present;
  for (const auto& e : ds.edges) present.insert({e.src, e.dst});
  std::pair<flat::NodeId, flat::NodeId> toggle{0, 0};
  for (const auto& n : ds.nodes) {
    if (n.id != 0 && !present.count({0, n.id})) {
      toggle = {0, n.id};
      break;
    }
  }
  const std::string add_spec = "add-edge " + std::to_string(toggle.first) +
                               " " + std::to_string(toggle.second) + " 1";
  const std::string remove_spec = "remove-edge " +
                                  std::to_string(toggle.first) + " " +
                                  std::to_string(toggle.second);

  struct PhaseOut {
    double wall = 0;
    double p50 = 0;
    double p99 = 0;
    int64_t mutation_batches = 0;
  };
  auto run_phase = [&](bool mutate) -> PhaseOut {
    PhaseOut out;
    std::atomic<bool> done{false};
    std::atomic<int64_t> mutations{0};
    std::thread mutator;
    if (mutate) {
      mutator = std::thread([&] {
        bool added = false;
        Rng rng(103);
        while (!done.load(std::memory_order_relaxed)) {
          std::vector<serve::Mutation> batch;
          auto parsed =
              serve::Mutation::Parse(added ? remove_spec : add_spec);
          if (!parsed.ok()) break;
          batch.push_back(std::move(parsed).value());
          // Rewrite a random node's features (to fresh values, so the
          // invalidation is real work, not a no-op detection test).
          const flat::NodeId victim =
              all[static_cast<std::size_t>(rng.UniformInt(
                  0, static_cast<int64_t>(all.size()) - 1))];
          std::string feats;
          for (int64_t d = 0; d < ds.feature_dim; ++d) {
            if (d) feats += ',';
            feats += std::to_string(rng.UniformInt(-4, 4));
          }
          batch.push_back(std::move(
              *serve::Mutation::Parse("update-features " +
                                      std::to_string(victim) + " " + feats)));
          if (!service.ApplyMutations(std::move(batch)).ok()) break;
          added = !added;
          mutations.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }

    std::vector<std::vector<double>> latencies(kClients);
    const double start = Now();
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng rng(DeriveSeed(977, static_cast<uint64_t>(c)));
        latencies[c].reserve(kRequestsPerClient);
        for (int r = 0; r < kRequestsPerClient; ++r) {
          std::vector<flat::NodeId> targets;
          targets.reserve(kTargetsPerRequest);
          for (int t = 0; t < kTargetsPerRequest; ++t) {
            targets.push_back(all[static_cast<std::size_t>(rng.UniformInt(
                0, static_cast<int64_t>(all.size()) - 1))]);
          }
          const double t0 = Now();
          auto scores = service.Score(std::move(targets));
          if (!scores.ok()) {
            std::fprintf(stderr, "score: %s\n",
                         scores.status().ToString().c_str());
            std::exit(1);
          }
          latencies[c].push_back(Now() - t0);
        }
      });
    }
    for (auto& t : clients) t.join();
    out.wall = Now() - start;
    done.store(true, std::memory_order_relaxed);
    if (mutator.joinable()) mutator.join();
    out.mutation_batches = mutations.load();

    std::vector<double> flat_lat;
    for (auto& l : latencies) {
      flat_lat.insert(flat_lat.end(), l.begin(), l.end());
    }
    out.p50 = Percentile(flat_lat, 0.50);
    out.p99 = Percentile(flat_lat, 0.99);
    return out;
  };

  const int total = kClients * kRequestsPerClient;
  std::printf("%-18s %10s %12s %12s %12s %10s\n", "phase", "wall (s)",
              "req/s", "p50 (ms)", "p99 (ms)", "mut/s");
  for (const bool mutate : {false, true}) {
    const char* name = mutate ? "mutation_stream" : "steady";
    PhaseOut out = run_phase(mutate);
    std::printf("%-18s %10.2f %12.1f %12.2f %12.2f %10.1f\n", name, out.wall,
                static_cast<double>(total) / out.wall, out.p50 * 1e3,
                out.p99 * 1e3,
                static_cast<double>(out.mutation_batches) / out.wall);
    std::printf("RESULT serve/%s_wall %.6f\n", name, out.wall);
    std::printf("RESULT serve/%s_p99 %.6f\n", name, out.p99);
  }

  if (agl::Status s = service.Persist(); !s.ok()) {
    std::fprintf(stderr, "persist: %s\n", s.ToString().c_str());
    return 1;
  }
  const serve::ServeStats stats = service.stats();
  std::printf(
      "\nservice: %lld served / %lld admitted in %lld passes "
      "(%.1f requests per coalesced pass), %lld mutation batches, "
      "%lld invalidation floors\n",
      static_cast<long long>(stats.served),
      static_cast<long long>(stats.admitted),
      static_cast<long long>(stats.batches),
      static_cast<double>(stats.served) /
          static_cast<double>(std::max<int64_t>(1, stats.batches)),
      static_cast<long long>(stats.mutation_batches),
      static_cast<long long>(stats.invalidated_nodes));
  std::printf(
      "store: %lld hits, %lld misses, %lld invalidations, "
      "%lld spill hits\n",
      static_cast<long long>(stats.store.hits),
      static_cast<long long>(stats.store.misses),
      static_cast<long long>(stats.store.invalidations),
      static_cast<long long>(stats.store.spill_hits));
  std::printf(
      "\npaper shape: serving stays warm across requests and restarts; a "
      "mutation stream costs surgical invalidation, never a cache flush.\n");
  return 0;
}
