// Batched GraphInfer with the cross-slice segment-embedding cache — the
// multi-slice serving workload behind the Table 5 efficiency claims.
//
// Shape expectation: slicing the targets makes slice-independent inference
// re-derive every shared K-hop halo embedding per slice, so its
// embedding_evaluations grow well past nodes x layers. The cache brings
// them back down (hits replace evaluations one for one), with a bounded
// budget + DFS spill landing between the two.
//
// RESULT lines feed scripts/check_bench_regression.py; the JSON recorded
// by scripts/run_benchmarks.sh keeps the full table (including the
// evaluations-saved counters the ISSUE acceptance tracks).

#include <cstdio>
#include <string>

#include "data/dataset.h"
#include "gnn/model.h"
#include "infer/graphinfer.h"
#include "mr/local_dfs.h"

int main() {
  using namespace agl;

  data::UugLikeOptions opts;
  opts.num_nodes = 2500;
  opts.feature_dim = 32;
  opts.attach_edges = 4;
  opts.train_size = 800;
  opts.val_size = 200;
  opts.test_size = 300;
  data::Dataset ds = data::MakeUugLike(opts);

  gnn::ModelConfig model;
  model.type = gnn::ModelType::kGraphSage;
  model.num_layers = 2;
  model.in_dim = ds.feature_dim;
  model.hidden_dim = 16;
  model.out_dim = 2;
  gnn::GnnModel net(model);
  const auto state = net.StateDict();

  constexpr int kSlices = 8;
  std::printf(
      "UUG-like graph: %lld nodes, %lld edges; 2-layer GraphSAGE, "
      "%d target slices\n\n",
      static_cast<long long>(ds.num_nodes()),
      static_cast<long long>(ds.num_edges()), kSlices);

  auto dfs = mr::LocalDfs::Open("/tmp/agl_bench_infer_batch_dfs");
  if (!dfs.ok()) {
    std::fprintf(stderr, "dfs: %s\n", dfs.status().ToString().c_str());
    return 1;
  }

  struct Variant {
    const char* name;
    int64_t budget;
    bool spill;
  };
  const Variant variants[] = {
      {"independent", 0, false},          // slice-independent baseline
      {"cached_unbounded", -1, false},    // full cross-slice reuse
      {"cached_256k_spill", 256 << 10, true},  // bounded + DFS spill
  };

  infer::InferCosts independent_costs;
  std::printf("%-22s %12s %14s %12s %12s %12s %12s\n", "variant",
              "time (s)", "embed evals", "hits", "misses", "spilled",
              "spill hits");
  for (const Variant& v : variants) {
    infer::InferConfig config;
    config.model = model;
    config.job.num_workers = 8;
    config.batch_slices = kSlices;
    config.cache_budget_bytes = v.budget;
    if (v.spill) {
      config.cache_spill_path = dfs->root() + "/infer_cache.spill";
    }
    auto result = infer::RunGraphInferBatched(config, state, ds.nodes,
                                              ds.edges);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", v.name,
                   result.status().ToString().c_str());
      return 1;
    }
    if (v.budget == 0) independent_costs = result->costs;
    std::printf("%-22s %12.2f %14lld %12lld %12lld %12lld %12lld\n", v.name,
                result->costs.time_seconds,
                static_cast<long long>(result->costs.embedding_evaluations),
                static_cast<long long>(result->costs.cache_hits),
                static_cast<long long>(result->costs.cache_misses),
                static_cast<long long>(result->costs.cache_spilled),
                static_cast<long long>(result->costs.cache_spill_hits));
    std::printf("RESULT infer_batch/%s %.6f\n", v.name,
                result->costs.time_seconds);
    if (v.budget != 0) {
      const int64_t saved = independent_costs.embedding_evaluations -
                            result->costs.embedding_evaluations;
      std::printf(
          "  evaluations saved vs independent: %lld (%.1f%%), "
          "cache hits %lld\n",
          static_cast<long long>(saved),
          100.0 * static_cast<double>(saved) /
              static_cast<double>(independent_costs.embedding_evaluations),
          static_cast<long long>(result->costs.cache_hits));
    }
  }
  std::printf(
      "\npaper shape: GraphInfer already evaluates each (node, layer) once "
      "per run; the cache extends that guarantee across the %d slices.\n",
      kSlices);
  return 0;
}
