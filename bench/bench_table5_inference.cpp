// Table 5 — Inference efficiency on the User-User Graph.
//
// Paper's rows: Original (GraphFlat + forward propagation, with phase
// split) vs GraphInfer, columns time-cost (s), CPU-cost (core*min),
// memory-cost (GB*min). Shape expectation: GraphInfer wins every column —
// the paper reports ~4x time, ~2x CPU, ~4x memory — because sliced
// message-passing inference computes each node's embedding exactly once
// while overlapping GraphFeatures recompute shared nodes.

#include <cstdio>

#include "data/dataset.h"
#include "gnn/model.h"
#include "infer/graphinfer.h"
#include "infer/original.h"

int main() {
  using namespace agl;

  data::UugLikeOptions opts;
  opts.num_nodes = 4000;
  opts.feature_dim = 32;
  opts.attach_edges = 5;
  opts.train_size = 1000;
  opts.val_size = 200;
  opts.test_size = 400;
  data::Dataset ds = data::MakeUugLike(opts);
  std::printf("UUG-like graph: %lld nodes, %lld edges\n\n",
              static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(ds.num_edges()));

  // A trained-shape 2-layer GAT producing 8-dim embeddings, as in §4.2.2.
  gnn::ModelConfig model;
  model.type = gnn::ModelType::kGat;
  model.num_layers = 2;
  model.in_dim = ds.feature_dim;
  model.hidden_dim = 8;
  model.out_dim = 2;
  model.aggregation_threads = 4;
  gnn::GnnModel net(model);
  const auto state = net.StateDict();

  infer::OriginalInferenceConfig oconfig;
  oconfig.model = model;
  oconfig.batch_size = 16;
  oconfig.flat.sampler = {sampling::Strategy::kUniform, 15};
  oconfig.flat.job.num_workers = 8;
  auto original =
      infer::RunOriginalInference(oconfig, state, ds.nodes, ds.edges);
  if (!original.ok()) {
    std::fprintf(stderr, "original: %s\n",
                 original.status().ToString().c_str());
    return 1;
  }

  infer::InferConfig iconfig;
  iconfig.model = model;
  iconfig.job.num_workers = 8;
  auto sliced = infer::RunGraphInfer(iconfig, state, ds.nodes, ds.edges);
  if (!sliced.ok()) {
    std::fprintf(stderr, "graphinfer: %s\n",
                 sliced.status().ToString().c_str());
    return 1;
  }

  std::printf("Table 5: inference efficiency\n");
  std::printf("%-22s %-22s %12s %16s %18s %14s\n", "method", "phase",
              "time (s)", "CPU (core*min)", "memory (GB*min)",
              "embed evals");
  std::printf("%-22s %-22s %12.2f %16s %18s %14s\n", "Original",
              "GraphFlat", original->flat_seconds, "-", "-", "-");
  std::printf("%-22s %-22s %12.2f %16s %18s %14s\n", "Original",
              "forward propagation", original->forward_seconds, "-", "-",
              "-");
  std::printf("%-22s %-22s %12.2f %16.3f %18.5f %14lld\n", "Original",
              "total", original->costs.time_seconds,
              original->costs.cpu_core_minutes,
              original->costs.memory_gb_minutes,
              static_cast<long long>(original->costs.embedding_evaluations));
  std::printf("%-22s %-22s %12.2f %16.3f %18.5f %14lld\n", "GraphInfer",
              "total", sliced->costs.time_seconds,
              sliced->costs.cpu_core_minutes,
              sliced->costs.memory_gb_minutes,
              static_cast<long long>(sliced->costs.embedding_evaluations));

  std::printf(
      "\nspeedups (Original/GraphInfer): time %.2fx, CPU %.2fx, "
      "memory %.2fx, embedding work %.2fx\n",
      original->costs.time_seconds / sliced->costs.time_seconds,
      original->costs.cpu_core_minutes / sliced->costs.cpu_core_minutes,
      original->costs.memory_gb_minutes / sliced->costs.memory_gb_minutes,
      static_cast<double>(original->costs.embedding_evaluations) /
          static_cast<double>(sliced->costs.embedding_evaluations));
  std::printf("paper shape: ~4x time, ~2x CPU, ~4x memory on 6.23e9 "
              "nodes/1000 workers.\n");
  return 0;
}
