// Figure 8 — Training speedup vs number of workers.
//
// Paper's plot: speedup ratio against worker count 1..100, near-linear
// with slope ~0.8 (78x at 100 workers). Workers in this repository are
// threads; on a multi-core box the "measured" column shows real wall-clock
// scaling. Because CI containers are often pinned to ONE core (where
// thread-level speedup is physically impossible), the bench additionally
// reports a *simulated cluster time*: each worker's partition is timed
// serially, and
//
//   T_sim(W) = max_w T_compute(partition_w) + T_ps(W)
//
// where T_ps models the shared parameter-server service time (pulls and
// pushes are serialized at the servers; per-interaction cost is measured,
// not assumed). This is exactly the bottleneck structure that gives the
// paper its sub-linear slope.

#include <algorithm>
#include <cstdio>
#include <thread>

#include "common/timer.h"
#include "data/dataset.h"
#include "flat/graphflat.h"
#include "trainer/trainer.h"

namespace {

using namespace agl;

trainer::TrainerConfig BaseConfig(const data::Dataset& ds) {
  trainer::TrainerConfig config;
  config.model.type = gnn::ModelType::kGcn;
  config.model.num_layers = 2;
  config.model.in_dim = ds.feature_dim;
  config.model.hidden_dim = 16;
  config.model.out_dim = 2;
  config.task = trainer::TaskKind::kBinaryAuc;
  config.epochs = 3;
  config.batch_size = 32;
  config.eval_every = 0;
  return config;
}

/// Mean wall-clock seconds per epoch with `workers` threads.
double MeasuredSecPerEpoch(const data::Dataset& ds,
                           std::span<const subgraph::GraphFeature> train,
                           int workers) {
  trainer::TrainerConfig config = BaseConfig(ds);
  config.num_workers = workers;
  trainer::GraphTrainer trainer(config);
  auto report = trainer.Train(train, {});
  if (!report.ok()) return -1;
  double per_epoch = 0;
  for (const auto& e : report->epochs) per_epoch += e.seconds;
  return per_epoch / static_cast<double>(report->epochs.size());
}

}  // namespace

int main() {
  data::UugLikeOptions opts;
  opts.num_nodes = 2500;
  opts.feature_dim = 24;
  opts.train_size = 1500;
  opts.val_size = 200;
  opts.test_size = 200;
  data::Dataset ds = data::MakeUugLike(opts);

  flat::GraphFlatConfig fconfig;
  fconfig.hops = 2;
  fconfig.sampler = {sampling::Strategy::kUniform, 10};
  auto features = flat::RunGraphFlatInMemory(fconfig, ds.nodes, ds.edges);
  if (!features.ok()) {
    std::fprintf(stderr, "GraphFlat: %s\n",
                 features.status().ToString().c_str());
    return 1;
  }
  auto splits = data::SplitFeatures(std::move(features).value(), ds);
  std::span<const subgraph::GraphFeature> train(splits.train);

  std::printf("Figure 8: training speedup (GCN on uug-like, %zu train "
              "features; machine reports %u hardware thread(s))\n\n",
              splits.train.size(), std::thread::hardware_concurrency());

  // --- Calibration for the simulated column: per-partition compute time
  // and per-batch PS service time, both measured serially.
  const int kWorkerCounts[] = {1, 2, 4, 8, 16, 32, 64, 100};
  const double t_serial = MeasuredSecPerEpoch(ds, train, 1);

  // PS service share: the fraction of a worker-batch spent in the (shared,
  // serialized) pull/push path. This is the one free parameter of the
  // simulation; 0.25% reproduces the paper's production cluster, whose
  // measured curve implies the PS accounts for ~1/400 of a serial epoch
  // (slope 0.8 at 100 workers). Everything else is measured.
  const double kPsShare = 0.0025;
  const double batches =
      std::ceil(static_cast<double>(train.size()) / 32.0);
  const double t_ps_per_batch = kPsShare * t_serial / batches;

  std::printf("%-10s %14s %12s %14s %12s %10s\n", "workers",
              "measured s/ep", "measured x", "simulated s/ep",
              "simulated x", "ideal");
  for (int workers : kWorkerCounts) {
    const double measured =
        workers <= 8 ? MeasuredSecPerEpoch(ds, train, workers) : -1;
    // Simulated: compute divides across workers (the paper's training set
    // has ~4e6 batches, so integer-batch straggler effects vanish); PS
    // service time is shared (not divided by W).
    const double t_compute = t_serial / workers;
    const double t_ps = t_ps_per_batch * batches;  // serialized at servers
    const double simulated = t_compute + t_ps;
    if (measured > 0) {
      std::printf("%-10d %14.3f %12.2f %14.3f %12.2f %10d\n", workers,
                  measured, t_serial / measured, simulated,
                  t_serial / simulated, workers);
    } else {
      std::printf("%-10d %14s %12s %14.3f %12.2f %10d\n", workers, "-", "-",
                  simulated, t_serial / simulated, workers);
    }
  }
  std::printf(
      "\npaper shape: near-linear, slope ~0.8 (78x at 100 workers). The "
      "simulated column reproduces that saturating shape; the measured "
      "column shows real scaling only when the container has >1 core.\n");
  return 0;
}
