// Table 3 — Effectiveness of different GNNs trained with different systems.
//
// Paper's table: {GCN, GraphSAGE, GAT} x {PyG, DGL, AGL} on Cora
// (accuracy), PPI (micro-F1), UUG (AUC). Our full-graph in-memory engine
// plays the DGL/PyG role ("baseline" column); AGL is the GraphFlat +
// subgraph trainer. Shape expectation: AGL within noise of the baseline on
// every cell (the paper reports deviations < 0.01), and on UUG the GAT row
// strongest.

#include <cstdio>

#include "baseline/full_graph.h"
#include "data/dataset.h"
#include "flat/graphflat.h"
#include "trainer/trainer.h"

namespace {

using namespace agl;

struct Cell {
  double baseline = 0;
  double agl = 0;
};

Cell RunCase(const data::Dataset& ds, gnn::ModelType type,
             trainer::TaskKind task, int64_t hidden, int64_t out_dim,
             int baseline_epochs, int agl_epochs) {
  gnn::ModelConfig model;
  model.type = type;
  model.num_layers = 2;
  model.in_dim = ds.feature_dim;
  model.hidden_dim = hidden;
  model.out_dim = out_dim;
  model.aggregation_threads = 4;

  Cell cell;
  // Baseline: whole graph in memory, full-batch training.
  baseline::FullGraphConfig bconfig;
  bconfig.model = model;
  bconfig.task = task;
  bconfig.epochs = baseline_epochs;
  bconfig.adam.lr = 0.01f;
  auto bl = baseline::TrainFullGraph(bconfig, ds);
  if (bl.ok()) cell.baseline = bl->test_metric;

  // AGL: GraphFlat then subgraph-batched PS training.
  flat::GraphFlatConfig fconfig;
  fconfig.hops = 2;
  fconfig.sampler = {sampling::Strategy::kUniform, 15};
  auto features = flat::RunGraphFlatInMemory(fconfig, ds.nodes, ds.edges);
  if (!features.ok()) return cell;
  auto splits = data::SplitFeatures(std::move(features).value(), ds);

  trainer::TrainerConfig tconfig;
  tconfig.model = model;
  tconfig.task = task;
  tconfig.num_workers = 4;
  tconfig.epochs = agl_epochs;
  tconfig.batch_size = 32;
  tconfig.adam.lr = 0.01f;
  trainer::GraphTrainer trainer(tconfig);
  auto report = trainer.Train(splits.train, splits.val);
  if (report.ok()) {
    auto test = trainer.Evaluate(report->final_state, splits.test);
    if (test.ok()) cell.agl = *test;
  }
  return cell;
}

}  // namespace

int main() {
  std::printf("Table 3: effectiveness (baseline = in-memory full-graph "
              "engine standing in for DGL/PyG)\n\n");
  std::printf("%-10s %-12s %12s %12s\n", "dataset", "model", "baseline",
              "AGL");

  const gnn::ModelType kModels[] = {gnn::ModelType::kGcn,
                                    gnn::ModelType::kGraphSage,
                                    gnn::ModelType::kGat};

  {  // Cora-like, accuracy, embedding 16.
    data::CoraLikeOptions opts;
    opts.num_nodes = 1000;
    opts.feature_dim = 256;
    opts.val_size = 200;
    opts.test_size = 300;
    data::Dataset ds = data::MakeCoraLike(opts);
    for (auto type : kModels) {
      Cell c = RunCase(ds, type, trainer::TaskKind::kSingleLabel, 16, 7,
                       80, 12);
      std::printf("%-10s %-12s %12.3f %12.3f\n", "cora-like",
                  gnn::ModelTypeName(type), c.baseline, c.agl);
    }
  }
  {  // PPI-like, micro-F1, embedding 64.
    data::PpiLikeOptions opts;
    opts.num_graphs = 8;
    opts.nodes_per_graph = 150;
    opts.num_labels = 50;
    opts.train_graphs = 6;
    opts.val_graphs = 1;
    data::Dataset ds = data::MakePpiLike(opts);
    for (auto type : kModels) {
      Cell c = RunCase(ds, type, trainer::TaskKind::kMultiLabel, 64, 50,
                       60, 8);
      std::printf("%-10s %-12s %12.3f %12.3f\n", "ppi-like",
                  gnn::ModelTypeName(type), c.baseline, c.agl);
    }
  }
  {  // UUG-like, AUC. The paper could not run DGL/PyG on UUG (OOM);
     // we still report the baseline at this scaled-down size.
    data::UugLikeOptions opts;
    opts.num_nodes = 2000;
    opts.feature_dim = 32;
    opts.train_size = 800;
    opts.val_size = 200;
    opts.test_size = 400;
    data::Dataset ds = data::MakeUugLike(opts);
    for (auto type : kModels) {
      Cell c = RunCase(ds, type, trainer::TaskKind::kBinaryAuc, 16, 2,
                       60, 8);
      std::printf("%-10s %-12s %12.3f %12.3f\n", "uug-like",
                  gnn::ModelTypeName(type), c.baseline, c.agl);
    }
  }
  std::printf(
      "\npaper shape: AGL matches DGL/PyG within ~0.01 per cell; on UUG "
      "GAT > GraphSAGE > GCN (0.867/0.708/0.681).\n");
  return 0;
}
