// GraphFlat scalability & skew ablation (§3.2.2 / §4.2.2 text claims).
//
// Reports: (a) wall time and reduce-task skew with and without hub
// re-indexing on a hubby graph; (b) neighborhood-size distribution under
// the different sampling strategies; (c) GraphFlat scaling with worker
// count; (d) shard-count sweep of the sharded pipeline (equal output,
// partitioned work). The paper's claims: re-indexing fixes reducer load
// balance, and sampling bounds neighborhood sizes ("decreased to an
// acceptable size").
//
// Compiled twice: the full driver, and (with AGL_BENCH_SHARDS_ONLY) the
// bench_graphflat_shards target that runs only the shard sweep so
// scripts/run_benchmarks.sh records it as BENCH_graphflat_shards.json.

#include <algorithm>
#include <cstdio>

#include "data/dataset.h"
#include "flat/graphflat.h"

namespace {

/// (d) Shard-count sweep: same logical job partitioned across S shards.
/// Feature counts/nodes must not drift with S (the property suite proves
/// byte-identity; the bench tracks time and per-shard task skew).
int RunShardSweep(const agl::data::Dataset& ds) {
  using namespace agl;
  std::printf("\n(d) sharded GraphFlat sweep (2 hops, uniform 10, "
              "hub threshold 32)\n");
  std::printf("%-10s %12s %10s %14s %16s\n", "shards", "time (s)", "speedup",
              "features", "max reduce rec");
  double t1 = 0;
  int64_t features1 = -1;
  for (int shards : {1, 2, 4, 7}) {
    flat::GraphFlatConfig config;
    config.hops = 2;
    config.sampler = {sampling::Strategy::kUniform, 10};
    config.hub_threshold = 32;
    config.num_shards = shards;
    config.job.num_workers = 2;  // per-shard jobs run concurrently
    flat::GraphFlatStats stats;
    auto features =
        flat::RunGraphFlatInMemory(config, ds.nodes, ds.edges, &stats);
    if (!features.ok()) {
      std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
      return 1;
    }
    if (shards == 1) {
      t1 = stats.elapsed_seconds;
      features1 = stats.num_features;
    }
    if (stats.num_features != features1) {
      std::fprintf(stderr, "shard sweep drift: %lld features at S=%d\n",
                   static_cast<long long>(stats.num_features), shards);
      return 1;
    }
    std::printf("%-10d %12.2f %10.2f %14lld %16lld\n", shards,
                stats.elapsed_seconds, t1 / stats.elapsed_seconds,
                static_cast<long long>(stats.num_features),
                static_cast<long long>(
                    stats.job_stats.max_reduce_task_records));
  }
  return 0;
}

}  // namespace

int main() {
  using namespace agl;

  data::UugLikeOptions opts;
  opts.num_nodes = 3000;
  opts.feature_dim = 16;
  opts.attach_edges = 6;
  opts.train_size = 1500;
  opts.val_size = 300;
  opts.test_size = 300;
  data::Dataset ds = data::MakeUugLike(opts);
  std::vector<int64_t> in_degree(ds.num_nodes(), 0);
  for (const auto& e : ds.edges) in_degree[e.dst]++;
  std::printf("graph: %lld nodes, %lld edges, max in-degree %lld\n\n",
              static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(ds.num_edges()),
              static_cast<long long>(
                  *std::max_element(in_degree.begin(), in_degree.end())));

#ifdef AGL_BENCH_SHARDS_ONLY
  return RunShardSweep(ds);
#endif

  // (a) Re-indexing ablation.
  std::printf("(a) hub re-indexing ablation (2 hops, uniform sampling 10)\n");
  std::printf("%-24s %12s %18s %14s\n", "config", "time (s)",
              "max reduce rec", "max nbhd");
  for (bool reindex : {false, true}) {
    flat::GraphFlatConfig config;
    config.hops = 2;
    config.sampler = {sampling::Strategy::kUniform, 10};
    config.hub_threshold = reindex ? 32 : 0;  // 0 disables re-indexing
    config.reindex_fanout = 8;
    config.job.num_workers = 8;
    flat::GraphFlatStats stats;
    auto features =
        flat::RunGraphFlatInMemory(config, ds.nodes, ds.edges, &stats);
    if (!features.ok()) {
      std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
      return 1;
    }
    std::printf("%-24s %12.2f %18lld %14lld\n",
                reindex ? "with re-indexing" : "without re-indexing",
                stats.elapsed_seconds,
                static_cast<long long>(
                    stats.job_stats.max_reduce_task_records),
                static_cast<long long>(stats.max_nodes));
  }

  // (b) Sampling strategies.
  std::printf("\n(b) sampling strategy vs neighborhood size (2 hops)\n");
  std::printf("%-12s %12s %14s %14s\n", "strategy", "cap", "avg nbhd",
              "max nbhd");
  struct Case {
    sampling::Strategy strategy;
    int64_t cap;
  };
  for (const Case c : {Case{sampling::Strategy::kNone, 0},
                       Case{sampling::Strategy::kUniform, 5},
                       Case{sampling::Strategy::kUniform, 15},
                       Case{sampling::Strategy::kWeighted, 15},
                       Case{sampling::Strategy::kTopK, 15}}) {
    flat::GraphFlatConfig config;
    config.hops = 2;
    config.sampler = {c.strategy, c.cap};
    config.job.num_workers = 8;
    flat::GraphFlatStats stats;
    auto features =
        flat::RunGraphFlatInMemory(config, ds.nodes, ds.edges, &stats);
    if (!features.ok()) {
      std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s %12lld %14.1f %14lld\n",
                sampling::StrategyName(c.strategy),
                static_cast<long long>(c.cap),
                static_cast<double>(stats.total_nodes) / stats.num_features,
                static_cast<long long>(stats.max_nodes));
  }

  // (c) Worker scaling.
  std::printf("\n(c) GraphFlat worker scaling (2 hops, uniform 10)\n");
  std::printf("%-10s %12s %10s\n", "workers", "time (s)", "speedup");
  double t1 = 0;
  for (int workers : {1, 2, 4, 8}) {
    flat::GraphFlatConfig config;
    config.hops = 2;
    config.sampler = {sampling::Strategy::kUniform, 10};
    config.job.num_workers = workers;
    flat::GraphFlatStats stats;
    auto features =
        flat::RunGraphFlatInMemory(config, ds.nodes, ds.edges, &stats);
    if (!features.ok()) return 1;
    if (workers == 1) t1 = stats.elapsed_seconds;
    std::printf("%-10d %12.2f %10.2f\n", workers, stats.elapsed_seconds,
                t1 / stats.elapsed_seconds);
  }

  return RunShardSweep(ds);
}
