// GraphFlat scalability & skew ablation (§3.2.2 / §4.2.2 text claims).
//
// Reports: (a) wall time and reduce-task skew with and without hub
// re-indexing on a hubby graph; (b) neighborhood-size distribution under
// the different sampling strategies; (c) GraphFlat scaling with worker
// count. The paper's claims: re-indexing fixes reducer load balance, and
// sampling bounds neighborhood sizes ("decreased to an acceptable size").

#include <algorithm>
#include <cstdio>

#include "data/dataset.h"
#include "flat/graphflat.h"

int main() {
  using namespace agl;

  data::UugLikeOptions opts;
  opts.num_nodes = 3000;
  opts.feature_dim = 16;
  opts.attach_edges = 6;
  opts.train_size = 1500;
  opts.val_size = 300;
  opts.test_size = 300;
  data::Dataset ds = data::MakeUugLike(opts);
  std::vector<int64_t> in_degree(ds.num_nodes(), 0);
  for (const auto& e : ds.edges) in_degree[e.dst]++;
  std::printf("graph: %lld nodes, %lld edges, max in-degree %lld\n\n",
              static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(ds.num_edges()),
              static_cast<long long>(
                  *std::max_element(in_degree.begin(), in_degree.end())));

  // (a) Re-indexing ablation.
  std::printf("(a) hub re-indexing ablation (2 hops, uniform sampling 10)\n");
  std::printf("%-24s %12s %18s %14s\n", "config", "time (s)",
              "max reduce rec", "max nbhd");
  for (bool reindex : {false, true}) {
    flat::GraphFlatConfig config;
    config.hops = 2;
    config.sampler = {sampling::Strategy::kUniform, 10};
    config.hub_threshold = reindex ? 32 : 0;  // 0 disables re-indexing
    config.reindex_fanout = 8;
    config.job.num_workers = 8;
    flat::GraphFlatStats stats;
    auto features =
        flat::RunGraphFlatInMemory(config, ds.nodes, ds.edges, &stats);
    if (!features.ok()) {
      std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
      return 1;
    }
    std::printf("%-24s %12.2f %18lld %14lld\n",
                reindex ? "with re-indexing" : "without re-indexing",
                stats.elapsed_seconds,
                static_cast<long long>(
                    stats.job_stats.max_reduce_task_records),
                static_cast<long long>(stats.max_nodes));
  }

  // (b) Sampling strategies.
  std::printf("\n(b) sampling strategy vs neighborhood size (2 hops)\n");
  std::printf("%-12s %12s %14s %14s\n", "strategy", "cap", "avg nbhd",
              "max nbhd");
  struct Case {
    sampling::Strategy strategy;
    int64_t cap;
  };
  for (const Case c : {Case{sampling::Strategy::kNone, 0},
                       Case{sampling::Strategy::kUniform, 5},
                       Case{sampling::Strategy::kUniform, 15},
                       Case{sampling::Strategy::kWeighted, 15},
                       Case{sampling::Strategy::kTopK, 15}}) {
    flat::GraphFlatConfig config;
    config.hops = 2;
    config.sampler = {c.strategy, c.cap};
    config.job.num_workers = 8;
    flat::GraphFlatStats stats;
    auto features =
        flat::RunGraphFlatInMemory(config, ds.nodes, ds.edges, &stats);
    if (!features.ok()) {
      std::fprintf(stderr, "%s\n", features.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s %12lld %14.1f %14lld\n",
                sampling::StrategyName(c.strategy),
                static_cast<long long>(c.cap),
                static_cast<double>(stats.total_nodes) / stats.num_features,
                static_cast<long long>(stats.max_nodes));
  }

  // (c) Worker scaling.
  std::printf("\n(c) GraphFlat worker scaling (2 hops, uniform 10)\n");
  std::printf("%-10s %12s %10s\n", "workers", "time (s)", "speedup");
  double t1 = 0;
  for (int workers : {1, 2, 4, 8}) {
    flat::GraphFlatConfig config;
    config.hops = 2;
    config.sampler = {sampling::Strategy::kUniform, 10};
    config.job.num_workers = workers;
    flat::GraphFlatStats stats;
    auto features =
        flat::RunGraphFlatInMemory(config, ds.nodes, ds.edges, &stats);
    if (!features.ok()) return 1;
    if (workers == 1) t1 = stats.elapsed_seconds;
    std::printf("%-10d %12.2f %10.2f\n", workers, stats.elapsed_seconds,
                t1 / stats.elapsed_seconds);
  }
  return 0;
}
