// Cost of crossing the process boundary — the three transports the driver
// introduced, each against its in-process twin:
//
//   * parameter-server control+data round-trips through the wire protocol
//     (RemotePsClient over a loopback socket) vs the direct-call loopback
//     (LocalPsClient);
//   * shard-boundary exchange rounds through the DFS-backed exchange
//     (atomic dataset publish + poll) vs the mutex/condvar in-memory one;
//   * a whole GraphFlat job with shards as spawned OS processes vs the
//     threaded pipeline.
//
// Shape expectation: the socket adds framing + syscalls per round-trip
// (microseconds, not milliseconds — it is a loopback), the DFS exchange
// adds fsync'd publishes + poll latency per round, and process GraphFlat
// adds spawn + spec/result (de)serialization amortized over the job. None
// of these sit on the per-batch hot path more than once per round/tick,
// which is why the end-to-end gap stays small.
//
// RESULT lines (seconds, lower is better) feed
// scripts/check_bench_regression.py.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "driver/driver.h"
#include "flat/exchange.h"
#include "flat/graphflat.h"
#include "mr/local_dfs.h"
#include "mr/mapreduce.h"
#include "ps/client.h"
#include "ps/parameter_server.h"
#include "ps/remote.h"
#include "ps/server.h"
#include "tensor/tensor.h"

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Check(const agl::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agl;
  // This binary is re-exec'd as the GraphFlat shard workers below.
  if (auto code = driver::RunWorkerIfSpawned(argc, argv)) return *code;

  const std::string root = "/tmp/agl_bench_distributed";
  std::error_code ec;
  std::filesystem::remove_all(root, ec);

  // --- PS round-trips: loopback vs wire ----------------------------------
  // A 2-layer-GNN-sized state dict (8 params, ~130 KiB of floats); each
  // iteration is one worker tick's traffic: PullAll + PushGradients.
  {
    std::map<std::string, tensor::Tensor> state, grads;
    Rng rng(7);
    for (int p = 0; p < 8; ++p) {
      tensor::Tensor t(64, 64);
      for (int64_t i = 0; i < t.size(); ++i) {
        t.data()[i] = static_cast<float>(rng.Uniform()) - 0.5f;
      }
      state["param" + std::to_string(p)] = t;
      grads["param" + std::to_string(p)] = t;
    }
    constexpr int kIters = 400;

    const auto run = [&](ps::PsClient* client) {
      const double start = Now();
      for (int i = 0; i < kIters; ++i) {
        auto pulled = client->PullAll();
        Check(pulled.status(), "PullAll");
        Check(client->PushGradients(grads), "PushGradients");
      }
      return Now() - start;
    };

    ps::ServerOptions opts;
    ps::ParameterServer local_server(opts);
    ps::LocalPsClient loopback(&local_server);
    Check(loopback.Initialize(state), "Initialize");
    const double loopback_s = run(&loopback);

    ps::ParameterServer wire_server(opts);
    ps::PsServer wire(&wire_server);
    Check(wire.Start(), "PsServer::Start");
    ps::RemotePsClient socket_client(wire.port());
    Check(socket_client.Initialize(state), "Initialize (wire)");
    const double socket_s = run(&socket_client);
    const ps::PsTransportStats tp = wire.transport_stats();
    wire.Stop();

    std::printf("ps round-trips (%d x PullAll+Push, 8 params): "
                "loopback %.3fs, socket %.3fs (%.1fx), %lld bytes moved\n",
                kIters, loopback_s, socket_s, socket_s / loopback_s,
                static_cast<long long>(tp.bytes_sent + tp.bytes_received));
    std::printf("RESULT distributed/ps_loopback_roundtrips %.6f\n",
                loopback_s);
    std::printf("RESULT distributed/ps_socket_roundtrips %.6f\n", socket_s);
  }

  // --- Exchange rounds: in-memory vs DFS ----------------------------------
  // S shard threads x R rounds, each publishing M small records per round
  // then collecting its inbox — the boundary traffic pattern of the
  // GraphFlat/analytics round loops.
  {
    constexpr int kShards = 4;
    constexpr int kRounds = 12;
    constexpr int kRecordsPerShard = 400;

    const auto run = [&](flat::Exchange* exchange) {
      const double start = Now();
      std::vector<std::thread> threads;
      threads.reserve(kShards);
      for (int s = 0; s < kShards; ++s) {
        threads.emplace_back([exchange, s] {
          for (int round = 0; round < kRounds; ++round) {
            std::vector<mr::KeyValue> records;
            records.reserve(kRecordsPerShard);
            for (int r = 0; r < kRecordsPerShard; ++r) {
              records.push_back(
                  {std::to_string(s * kRecordsPerShard + r),
                   "round-" + std::to_string(round) + "-" +
                       std::string(96, 'x')});
            }
            Check(exchange->Publish(round, s, std::move(records)),
                  "Publish");
            auto inbox = exchange->Collect(round, s);
            Check(inbox.status(), "Collect");
          }
        });
      }
      for (auto& t : threads) t.join();
      return Now() - start;
    };

    flat::ShardPlan plan(kShards);
    flat::InMemoryExchange memory(plan);
    const double memory_s = run(&memory);

    auto dfs = mr::LocalDfs::Open(root + "/exchange");
    Check(dfs.status(), "LocalDfs::Open");
    flat::DfsExchange::Options xopts;
    xopts.poll_interval_ms = 1;
    flat::DfsExchange dfs_exchange(&*dfs, "bench", plan, xopts);
    const double dfs_s = run(&dfs_exchange);
    const flat::ExchangeStats stats = dfs_exchange.stats();

    std::printf("exchange (%d shards x %d rounds x %d records): "
                "in-memory %.3fs, dfs %.3fs (%.1fx), %lld bytes published\n",
                kShards, kRounds, kRecordsPerShard, memory_s, dfs_s,
                dfs_s / memory_s,
                static_cast<long long>(stats.bytes_published));
    std::printf("RESULT distributed/exchange_memory_rounds %.6f\n", memory_s);
    std::printf("RESULT distributed/exchange_dfs_rounds %.6f\n", dfs_s);
  }

  // --- GraphFlat: threads vs processes ------------------------------------
  {
    data::UugLikeOptions opts;
    opts.num_nodes = 600;
    opts.feature_dim = 16;
    opts.attach_edges = 4;
    opts.train_size = 200;
    opts.val_size = 100;
    opts.test_size = 100;
    data::Dataset ds = data::MakeUugLike(opts);

    flat::GraphFlatConfig config;
    config.hops = 2;
    config.num_shards = 4;
    config.job.num_workers = 2;

    auto out = mr::LocalDfs::Open(root + "/out");
    Check(out.status(), "LocalDfs::Open(out)");

    const double thread_start = Now();
    auto threaded = flat::RunGraphFlat(config, ds.nodes, ds.edges, &*out,
                                       "flat_threads");
    Check(threaded.status(), "RunGraphFlat");
    const double thread_s = Now() - thread_start;

    auto coord = mr::LocalDfs::Open(root + "/coord");
    Check(coord.status(), "LocalDfs::Open(coord)");
    driver::DriverOptions dopts;
    dopts.dfs = &*coord;
    dopts.job_prefix = "bench_flat";
    driver::DriverStats dstats;
    const double proc_start = Now();
    auto processes = driver::RunGraphFlatProcesses(
        dopts, config, ds.nodes, ds.edges, &*out, "flat_procs", &dstats);
    Check(processes.status(), "RunGraphFlatProcesses");
    const double proc_s = Now() - proc_start;

    std::printf("graphflat (%lld nodes, 4 shards): threads %.3fs, "
                "processes %.3fs (%.1fx, %lld spawns)\n",
                static_cast<long long>(opts.num_nodes), thread_s, proc_s,
                proc_s / thread_s, static_cast<long long>(dstats.spawns));
    std::printf("RESULT distributed/graphflat_threads %.6f\n", thread_s);
    std::printf("RESULT distributed/graphflat_processes %.6f\n", proc_s);
  }

  std::filesystem::remove_all(root, ec);
  return 0;
}
