// Table 4 — Time-cost per epoch on PPI in standalone mode.
//
// Paper's grid: {GCN, GraphSAGE, GAT} x {1,2,3 layers} x
// {PyG, DGL, AGL_base, AGL+pruning, AGL+partition, AGL+pruning&partition}.
// Our full-graph engine is the DGL/PyG stand-in; the four AGL rows ablate
// the §3.3.2 optimizations (AGL_base keeps the pipeline, as in the paper).
//
// Shape expectations: pruning is a no-op at 1 layer and grows with depth;
// partitioning helps GCN/SAGE more than GAT (attention FLOPs dominate);
// the combination is best.

#include <cstdio>

#include "baseline/full_graph.h"
#include "data/dataset.h"
#include "flat/graphflat.h"
#include "trainer/trainer.h"

namespace {

using namespace agl;

struct AglTiming {
  double wall = -1;     // wall-clock s/epoch on this machine
  double compute = -1;  // model-computation s/epoch (what the paper's
                        // pipeline converges to on adequate hardware)
};

AglTiming AglSecondsPerEpoch(const data::FeatureSplits& splits,
                             const data::Dataset& ds, gnn::ModelType type,
                             int layers, bool pruning, int threads,
                             bool pipeline) {
  trainer::TrainerConfig config;
  config.model.type = type;
  config.model.num_layers = layers;
  config.model.in_dim = ds.feature_dim;
  config.model.hidden_dim = 64;
  config.model.out_dim = static_cast<int64_t>(
      ds.multilabel ? ds.nodes[0].multilabel.size() : ds.num_classes);
  config.model.use_pruning = pruning;
  config.model.aggregation_threads = threads;
  config.task = trainer::TaskKind::kMultiLabel;
  config.num_workers = 1;  // standalone mode, like the paper's Table 4
  config.epochs = 3;
  config.batch_size = 64;
  config.use_pipeline = pipeline;
  config.eval_every = 0;
  trainer::GraphTrainer trainer(config);
  auto report = trainer.Train(splits.train, {});
  if (!report.ok()) {
    std::fprintf(stderr, "AGL run failed: %s\n",
                 report.status().ToString().c_str());
    return {};
  }
  AglTiming t{0, 0};
  for (const auto& e : report->epochs) {
    t.wall += e.seconds;
    t.compute += e.compute_seconds;
  }
  t.wall /= static_cast<double>(report->epochs.size());
  t.compute /= static_cast<double>(report->epochs.size());
  return t;
}

double BaselineSecondsPerEpoch(const data::Dataset& ds, gnn::ModelType type,
                               int layers) {
  baseline::FullGraphConfig config;
  config.model.type = type;
  config.model.num_layers = layers;
  config.model.in_dim = ds.feature_dim;
  config.model.hidden_dim = 64;
  config.model.out_dim = static_cast<int64_t>(ds.nodes[0].multilabel.size());
  config.task = trainer::TaskKind::kMultiLabel;
  config.epochs = 3;
  auto report = baseline::TrainFullGraph(config, ds);
  return report.ok() ? report->mean_epoch_seconds : -1;
}

}  // namespace

int main() {
  // PPI-like at a size that runs in seconds per configuration.
  data::PpiLikeOptions opts;
  opts.num_graphs = 10;
  opts.nodes_per_graph = 200;
  opts.num_labels = 121;
  opts.feature_dim = 50;
  opts.train_graphs = 8;
  opts.val_graphs = 1;
  data::Dataset ds = data::MakePpiLike(opts);

  flat::GraphFlatConfig fconfig;
  fconfig.hops = 3;  // deep enough for 3-layer models
  fconfig.sampler = {sampling::Strategy::kUniform, 10};
  auto features = flat::RunGraphFlatInMemory(fconfig, ds.nodes, ds.edges);
  if (!features.ok()) {
    std::fprintf(stderr, "GraphFlat failed: %s\n",
                 features.status().ToString().c_str());
    return 1;
  }
  auto splits = data::SplitFeatures(std::move(features).value(), ds);
  std::printf(
      "Table 4: time-cost (s) per epoch, PPI-like standalone (%zu train "
      "features)\n\n",
      splits.train.size());

  const int kThreads = 4;
  std::printf(
      "model-computation seconds per epoch (the quantity the paper's "
      "pipeline exposes: prep overlaps compute). Wall-clock in "
      "parentheses.\n\n");
  std::printf("%-12s %-8s %12s %18s %18s %18s %18s\n", "model", "layers",
              "full-graph", "AGL_base", "+pruning", "+partition", "+both");
  for (gnn::ModelType type : {gnn::ModelType::kGcn,
                              gnn::ModelType::kGraphSage,
                              gnn::ModelType::kGat}) {
    for (int layers : {1, 2, 3}) {
      const double fg = BaselineSecondsPerEpoch(ds, type, layers);
      const AglTiming base =
          AglSecondsPerEpoch(splits, ds, type, layers, false, 1, true);
      const AglTiming prune =
          AglSecondsPerEpoch(splits, ds, type, layers, true, 1, true);
      const AglTiming part = AglSecondsPerEpoch(splits, ds, type, layers,
                                                false, kThreads, true);
      const AglTiming both = AglSecondsPerEpoch(splits, ds, type, layers,
                                                true, kThreads, true);
      std::printf(
          "%-12s %-8d %12.3f %10.3f (%5.2f) %10.3f (%5.2f) %10.3f (%5.2f) "
          "%10.3f (%5.2f)\n",
          gnn::ModelTypeName(type), layers, fg, base.compute, base.wall,
          prune.compute, prune.wall, part.compute, part.wall, both.compute,
          both.wall);
    }
  }

  // Ablation beyond the paper's table: the pipeline itself.
  const AglTiming with_pipe = AglSecondsPerEpoch(
      splits, ds, gnn::ModelType::kGcn, 2, true, kThreads, true);
  const AglTiming no_pipe = AglSecondsPerEpoch(
      splits, ds, gnn::ModelType::kGcn, 2, true, kThreads, false);
  std::printf("\npipeline ablation (GCN, 2 layers, wall-clock): with "
              "%.3fs/epoch, without %.3fs/epoch\n",
              with_pipe.wall, no_pipe.wall);
  std::printf(
      "\npaper shape: pruning no-op at 1 layer, helps at 2-3; partitioning "
      "strongest on GCN/SAGE; combined best (paper: 5-13x vs PyG, "
      "1.2-3.5x vs DGL). NOTE: the +partition columns only move wall-clock "
      "when the machine has spare cores; see bench_kernels for the "
      "per-kernel thread scaling.\n");
  return 0;
}
