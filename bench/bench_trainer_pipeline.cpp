// Trainer pipeline / consistency sweep (§3.3, Figure 7's training story).
//
// Sweeps SyncMode x worker count over a fixed uug-like workload and
// reports, per configuration:
//   * wall sec/epoch (the headline number; `RESULT` lines are parsed by
//     scripts/check_bench_regression.py, so keep their format stable);
//   * the per-stage time split (prep / compute / PS traffic summed over
//     workers) — with the staged pipeline the epoch cost approaches the
//     slowest stage, not the sum;
//   * SSP gate behaviour (admitted pulls, waits, max observed staleness)
//     showing the bound actually engaging between the BSP and async
//     extremes.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "data/dataset.h"
#include "flat/graphflat.h"
#include "trainer/trainer.h"

namespace {

using namespace agl;

struct ModeSpec {
  const char* name;
  trainer::SyncMode mode;
  int64_t staleness;  // kSsp only
};

trainer::TrainerConfig BaseConfig(const data::Dataset& ds) {
  trainer::TrainerConfig config;
  config.model.type = gnn::ModelType::kGcn;
  config.model.num_layers = 2;
  config.model.in_dim = ds.feature_dim;
  config.model.hidden_dim = 16;
  config.model.out_dim = 2;
  config.model.dropout = 0.f;
  config.task = trainer::TaskKind::kBinaryAuc;
  config.epochs = 3;
  config.batch_size = 32;
  config.eval_every = 0;
  return config;
}

}  // namespace

int main() {
  data::UugLikeOptions opts;
  opts.num_nodes = 1800;
  opts.feature_dim = 16;
  opts.train_size = 1024;
  opts.val_size = 200;
  opts.test_size = 200;
  data::Dataset ds = data::MakeUugLike(opts);

  flat::GraphFlatConfig fconfig;
  fconfig.hops = 2;
  fconfig.sampler = {sampling::Strategy::kUniform, 10};
  auto features = flat::RunGraphFlatInMemory(fconfig, ds.nodes, ds.edges);
  if (!features.ok()) {
    std::fprintf(stderr, "GraphFlat: %s\n",
                 features.status().ToString().c_str());
    return 1;
  }
  auto splits = data::SplitFeatures(std::move(features).value(), ds);
  std::span<const subgraph::GraphFeature> train(splits.train);
  std::span<const subgraph::GraphFeature> val(splits.val);

  std::printf(
      "Trainer consistency sweep: GCN-2 on uug-like, %zu train features, "
      "batch 32, 3 epochs (%u hardware thread(s))\n\n",
      splits.train.size(), std::thread::hardware_concurrency());

  const ModeSpec kModes[] = {
      {"async", trainer::SyncMode::kAsync, 0},
      {"bsp", trainer::SyncMode::kBsp, 0},
      {"ssp-k0", trainer::SyncMode::kSsp, 0},
      {"ssp-k2", trainer::SyncMode::kSsp, 2},
      {"ssp-kInf", trainer::SyncMode::kSsp, ps::kUnboundedStaleness},
  };
  const int kWorkerCounts[] = {1, 2, 4};

  std::printf("%-10s %-8s %12s %9s %9s %9s %9s %7s %7s %9s\n", "mode",
              "workers", "sec/epoch", "val", "prep_s", "comp_s", "comm_s",
              "waits", "maxstl", "commits");
  for (const ModeSpec& mode : kModes) {
    for (int workers : kWorkerCounts) {
      trainer::TrainerConfig config = BaseConfig(ds);
      config.sync_mode = mode.mode;
      config.staleness_bound = mode.staleness;
      config.num_workers = workers;
      auto report = trainer::GraphTrainer(config).Train(train, {});
      if (!report.ok()) {
        std::fprintf(stderr, "%s/w%d: %s\n", mode.name, workers,
                     report.status().ToString().c_str());
        return 1;
      }
      double sec = 0, prep = 0, comp = 0, comm = 0;
      for (const auto& e : report->epochs) {
        sec += e.seconds;
        prep += e.prep_seconds;
        comp += e.compute_seconds;
        comm += e.comm_seconds;
      }
      const double n = static_cast<double>(report->epochs.size());
      // Final quality on the held-out set, from the last snapshot.
      auto metric =
          trainer::GraphTrainer(config).Evaluate(report->final_state, val);
      const ps::ServerStats& stats = report->ps_stats;
      std::printf("%-10s %-8d %12.4f %9.4f %9.3f %9.3f %9.3f %7lld %7lld "
                  "%9lld\n",
                  mode.name, workers, sec / n, metric.ok() ? *metric : -1,
                  prep / n, comp / n, comm / n,
                  static_cast<long long>(stats.ssp_waits),
                  static_cast<long long>(stats.max_staleness),
                  static_cast<long long>(stats.ssp_commits));
      // Stable machine-readable line for the CI perf-regression gate.
      std::printf("RESULT trainer_ssp/%s/w%d %.6f\n", mode.name, workers,
                  sec / n);
    }
  }
  std::printf(
      "\npaper shape: async ~= ssp-kInf (no gate engagement), ssp-k0 "
      "tracks bsp (lockstep + one averaged update per tick), and small "
      "bounds sit between — waits > 0 with maxstl <= k shows the gate "
      "holding.\n");
  return 0;
}
