// Micro-benchmarks (google-benchmark) for the operator-level optimizations
// of §3.3.2: edge-partitioned SpMM aggregation and the fused GAT
// edge-softmax kernel, across thread counts — the operator-level half of
// the Table 4 story.

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "common/rng.h"
#include "tensor/sparse.h"

namespace {

using namespace agl;

tensor::SparseMatrix MakeAdjacency(int64_t n, int64_t avg_degree,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<tensor::CooEntry> entries;
  entries.reserve(n * avg_degree);
  for (int64_t r = 0; r < n; ++r) {
    // Skewed: a few hub rows.
    const int64_t deg = (r % 97 == 0) ? avg_degree * 20
                                      : rng.UniformInt(1, avg_degree * 2);
    for (int64_t d = 0; d < deg; ++d) {
      entries.push_back({r, rng.UniformInt(0, n - 1),
                         static_cast<float>(rng.Uniform(0.1, 1.0))});
    }
  }
  return tensor::SparseMatrix::FromCoo(n, n, entries);
}

void BM_SpmmAggregation(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int64_t n = 20000, f = 64;
  tensor::SparseMatrix adj = MakeAdjacency(n, 8, 42);
  Rng rng(1);
  tensor::Tensor h = tensor::Tensor::RandomNormal(n, f, 0, 1, &rng);
  for (auto _ : state) {
    tensor::Tensor out = tensor::Spmm(adj, h, {threads});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz());
}
BENCHMARK(BM_SpmmAggregation)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_GatEdgeSoftmax(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int64_t n = 8000, f = 32;
  auto adj = std::make_shared<autograd::SharedAdjacency>(
      MakeAdjacency(n, 8, 43));
  Rng rng(2);
  autograd::Variable h =
      autograd::Variable::Constant(tensor::Tensor::RandomNormal(n, f, 0, 1, &rng));
  autograd::Variable al =
      autograd::Variable::Constant(tensor::Tensor::RandomNormal(n, 1, 0, 1, &rng));
  autograd::Variable ar =
      autograd::Variable::Constant(tensor::Tensor::RandomNormal(n, 1, 0, 1, &rng));
  for (auto _ : state) {
    autograd::Variable out =
        autograd::GatAggregate(adj, h, al, ar, 0.2f, {threads});
    benchmark::DoNotOptimize(out.value().data());
  }
  state.SetItemsProcessed(state.iterations() * adj->matrix().nnz());
}
BENCHMARK(BM_GatEdgeSoftmax)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_GatBackward(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int64_t n = 4000, f = 16;
  auto adj = std::make_shared<autograd::SharedAdjacency>(
      MakeAdjacency(n, 6, 44));
  Rng rng(3);
  for (auto _ : state) {
    autograd::Variable h = autograd::Variable::Parameter(
        tensor::Tensor::RandomNormal(n, f, 0, 1, &rng));
    autograd::Variable al = autograd::Variable::Parameter(
        tensor::Tensor::RandomNormal(n, 1, 0, 1, &rng));
    autograd::Variable ar = autograd::Variable::Parameter(
        tensor::Tensor::RandomNormal(n, 1, 0, 1, &rng));
    autograd::Variable loss =
        autograd::Sum(autograd::GatAggregate(adj, h, al, ar, 0.2f, {threads}));
    autograd::Backward(loss);
    benchmark::DoNotOptimize(h.grad().data());
  }
}
BENCHMARK(BM_GatBackward)->Arg(1)->Arg(4);

void BM_EdgePartitioning(benchmark::State& state) {
  tensor::SparseMatrix adj = MakeAdjacency(50000, 8, 45);
  for (auto _ : state) {
    auto spans = tensor::PartitionRowsByNnz(adj.row_ptr(), adj.rows(), 8);
    benchmark::DoNotOptimize(spans.data());
  }
}
BENCHMARK(BM_EdgePartitioning);

}  // namespace

BENCHMARK_MAIN();
