// Figure 7 — Convergence under distributed training.
//
// Paper's plot: validation AUC vs epoch for 1/10/20/30 workers training a
// GAT on UUG. Shape expectation: more (asynchronous) workers need a few
// more epochs, but every curve converges to the same AUC level — the
// parameter-server design does not cost model quality.
//
// Worker counts are scaled to thread-level parallelism (1/2/4/8).

#include <cstdio>

#include "data/dataset.h"
#include "flat/graphflat.h"
#include "trainer/trainer.h"

int main() {
  using namespace agl;

  data::UugLikeOptions opts;
  opts.num_nodes = 2000;
  opts.feature_dim = 24;
  opts.train_size = 1000;
  opts.val_size = 300;
  opts.test_size = 300;
  // Harder than the defaults so convergence takes several epochs and the
  // worker-count separation is visible, as in the paper's plot.
  opts.community_feature_noise = 4.0;
  opts.cross_community_edge_rate = 0.25;
  data::Dataset ds = data::MakeUugLike(opts);

  flat::GraphFlatConfig fconfig;
  fconfig.hops = 2;
  fconfig.sampler = {sampling::Strategy::kUniform, 10};
  auto features = flat::RunGraphFlatInMemory(fconfig, ds.nodes, ds.edges);
  if (!features.ok()) {
    std::fprintf(stderr, "GraphFlat: %s\n",
                 features.status().ToString().c_str());
    return 1;
  }
  auto splits = data::SplitFeatures(std::move(features).value(), ds);

  const int kEpochs = 10;
  std::printf("Figure 7: validation AUC per epoch (GAT on uug-like, %zu "
              "train features)\n\n",
              splits.train.size());
  std::printf("%-8s", "epoch");
  const int kWorkerCounts[] = {1, 2, 4, 8};
  for (int w : kWorkerCounts) std::printf(" %9dw", w);
  std::printf("\n");

  std::vector<std::vector<double>> curves;
  for (int workers : kWorkerCounts) {
    trainer::TrainerConfig config;
    config.model.type = gnn::ModelType::kGat;
    config.model.num_layers = 2;
    config.model.in_dim = ds.feature_dim;
    config.model.hidden_dim = 8;
    config.model.out_dim = 2;
    config.task = trainer::TaskKind::kBinaryAuc;
    config.num_workers = workers;
    config.epochs = kEpochs;
    config.batch_size = 32;
    config.adam.lr = 0.002f;
    trainer::GraphTrainer trainer(config);
    auto report = trainer.Train(splits.train, splits.val);
    if (!report.ok()) {
      std::fprintf(stderr, "train failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::vector<double> curve;
    for (const auto& e : report->epochs) curve.push_back(e.val_metric);
    curves.push_back(std::move(curve));
  }

  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    std::printf("%-8d", epoch + 1);
    for (const auto& curve : curves) {
      std::printf(" %10.4f", epoch < static_cast<int>(curve.size())
                                 ? curve[epoch]
                                 : curve.back());
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper shape: all worker counts converge to the same AUC; larger "
      "counts lag by a few epochs (asynchronous staleness).\n");
  return 0;
}
