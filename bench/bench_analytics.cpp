// Vertex-program analytics on the power-law (UUG-like) generator:
// PageRank superstep throughput and the active-set decay that the
// DynPageRank only-affected-vertices idiom buys — converged vertices stop
// generating messages, so late supersteps touch a shrinking frontier.
//
// RESULT lines (total seconds + seconds per superstep, lower is better)
// feed scripts/check_bench_regression.py; the JSON recorded by
// scripts/run_benchmarks.sh keeps the decay table.

#include <cstdio>
#include <vector>

#include "analytics/programs.h"
#include "analytics/vertex_program.h"
#include "data/dataset.h"

int main() {
  using namespace agl;

  data::UugLikeOptions opts;
  opts.num_nodes = 10000;
  opts.feature_dim = 4;
  opts.attach_edges = 5;
  opts.train_size = 100;
  opts.val_size = 100;
  opts.test_size = 100;
  data::Dataset ds = data::MakeUugLike(opts);

  std::printf("UUG-like graph: %lld nodes, %lld edges (power-law)\n\n",
              static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(ds.num_edges()));

  struct Variant {
    const char* name;
    int num_shards;
  };
  const std::vector<Variant> variants = {{"pagerank_s1", 1},
                                         {"pagerank_s4", 4}};
  analytics::PageRankProgram pagerank(0.85, 1e-8);
  for (const Variant& v : variants) {
    analytics::AnalyticsConfig config;
    config.max_supersteps = 500;
    config.num_shards = v.num_shards;
    config.job.num_workers = 4;
    auto result =
        analytics::RunVertexProgram(config, pagerank, ds.nodes, ds.edges);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", v.name,
                   result.status().ToString().c_str());
      return 1;
    }
    const auto& stats = result->stats;
    std::printf(
        "%s: %d supersteps (%s), %.1f supersteps/sec, %lld gather edges\n",
        v.name, stats.supersteps,
        stats.converged ? "converged" : "cap hit",
        static_cast<double>(stats.supersteps) / stats.elapsed_seconds,
        static_cast<long long>(stats.num_gather_edges));
    std::printf("RESULT analytics/%s %.6f\n", v.name, stats.elapsed_seconds);
    std::printf("RESULT analytics/%s_per_superstep %.6f\n", v.name,
                stats.elapsed_seconds / stats.supersteps);

    if (v.num_shards == 1) {
      // Active-set decay: fraction of vertices re-applying per superstep.
      std::printf("\nactive-set decay (superstep: active fraction):\n");
      const auto n = static_cast<double>(stats.num_vertices);
      for (std::size_t r = 0; r < stats.active_per_round.size();
           r += (r < 8 ? 1 : 8)) {
        std::printf("  %3zu: %6.2f%%  (%lld vertices, %lld messages)\n",
                    r + 1,
                    100.0 * static_cast<double>(stats.active_per_round[r]) / n,
                    static_cast<long long>(stats.active_per_round[r]),
                    static_cast<long long>(stats.messages_per_round[r]));
      }
      const double first =
          static_cast<double>(stats.active_per_round.front());
      const double last = static_cast<double>(stats.active_per_round.back());
      std::printf("  decay: %.2fx fewer active vertices at the tail\n\n",
                  first / last);
    }
  }

  // Connected components: the exact-fixpoint workload (few supersteps,
  // label floods along the hubs).
  analytics::ConnectedComponentsProgram cc;
  analytics::AnalyticsConfig config;
  config.max_supersteps = 500;
  config.num_shards = 4;
  config.job.num_workers = 4;
  auto result = analytics::RunVertexProgram(config, cc, ds.nodes, ds.edges);
  if (!result.ok()) {
    std::fprintf(stderr, "cc: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("cc_s4: %d supersteps (%s)\n", result->stats.supersteps,
              result->stats.converged ? "converged" : "cap hit");
  std::printf("RESULT analytics/cc_s4 %.6f\n",
              result->stats.elapsed_seconds);
  return 0;
}
