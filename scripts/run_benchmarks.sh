#!/usr/bin/env bash
# Runs the paper's table/figure benchmark drivers and records one
# BENCH_<name>.json per bench (wall time, exit code, captured output) so
# the perf trajectory is machine-readable across PRs.
#
# Usage:
#   scripts/run_benchmarks.sh [bench ...]
#
# With no arguments, runs the default table/figure set. Environment:
#   BUILD_DIR    build tree to use (default: build; configured+built if missing)
#   OUT_DIR      where BENCH_*.json land (default: bench-results)
#   BENCH_LABEL  optional tag (e.g. "scalar-baseline"): suffixes the output
#                file name and is recorded in the JSON, so before/after
#                pairs of the same bench can sit side by side in OUT_DIR
#   BENCH_EXTRA_ARGS  optional extra argv passed to every requested bench
#                (e.g. "--benchmark_repetitions=5" for google-benchmark
#                drivers on noisy hosts — then read the *_min rows)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
out_dir="${OUT_DIR:-$repo_root/bench-results}"

default_benches=(
  bench_table2_datasets
  bench_table3_effectiveness
  bench_table4_efficiency
  bench_table5_inference
  bench_infer_batch
  bench_serve
  bench_analytics
  bench_fig7_convergence
  bench_fig8_speedup
  bench_trainer_ssp
  bench_distributed
  bench_graphflat_scale
  bench_graphflat_shards
  bench_kernels
)

benches=("${@:-${default_benches[@]}}")

# Configure once if needed, then an incremental build (a no-op when the
# tree is current). Benches gated on optional deps stay absent and are
# skipped below rather than retriggering configure every run.
if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
  echo "== configuring $build_dir"
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" -j"$(nproc)"

# Record which sanitizer (if any) the build tree was configured with:
# check_bench_regression.py refuses sanitizer-built numbers (a TSan binary
# is 5-20x slower; its timings must never become, or be judged against, a
# perf baseline).
sanitizer="$(sed -n 's/^AGL_SANITIZE:[^=]*=//p' "$build_dir/CMakeCache.txt" |
             head -n1)"
case "${sanitizer:-OFF}" in
  OFF|"") sanitizer="" ;;
esac
if [[ -n "$sanitizer" ]]; then
  echo "== note: $build_dir is an AGL_SANITIZE=$sanitizer build;" \
       "results will be marked and excluded from regression gating"
fi

# Same treatment for fault injection: with AGL_FAILPOINTS armed the benches
# measure the retry/recovery machinery, not the steady-state path, so the
# spec is recorded and the gate skips these results on both sides.
failpoints="${AGL_FAILPOINTS:-}"
if [[ -n "$failpoints" ]]; then
  echo "== note: AGL_FAILPOINTS is set ('$failpoints');" \
       "results will be marked and excluded from regression gating"
fi

mkdir -p "$out_dir"

ran=0
for bench in "${benches[@]}"; do
  exe="$build_dir/bench/$bench"
  if [[ ! -x "$exe" ]]; then
    echo "== skipping $bench (not built; optional dependency missing?)"
    continue
  fi
  echo "== running $bench"
  out_file="$(mktemp)"
  start_ns=$(date +%s%N)
  rc=0
  # shellcheck disable=SC2086 — BENCH_EXTRA_ARGS is intentionally split.
  "$exe" ${BENCH_EXTRA_ARGS:-} >"$out_file" 2>&1 || rc=$?
  end_ns=$(date +%s%N)

  git_rev="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
  out_name="BENCH_${bench#bench_}${BENCH_LABEL:+_$BENCH_LABEL}.json"
  BENCH_NAME="$bench" BENCH_RC="$rc" BENCH_NS="$((end_ns - start_ns))" \
  BENCH_OUT="$out_file" BENCH_GIT_REV="$git_rev" \
  BENCH_LABEL="${BENCH_LABEL:-}" BENCH_SANITIZER="$sanitizer" \
  BENCH_FAILPOINTS="$failpoints" \
  python3 - >"$out_dir/$out_name" <<'PY'
import json, os, subprocess, sys

with open(os.environ["BENCH_OUT"]) as f:
    lines = f.read().splitlines()

git_rev = os.environ["BENCH_GIT_REV"]

json.dump(
    {
        "bench": os.environ["BENCH_NAME"],
        "label": os.environ.get("BENCH_LABEL") or None,
        "sanitizer": os.environ.get("BENCH_SANITIZER") or None,
        "failpoints": os.environ.get("BENCH_FAILPOINTS") or None,
        "git_rev": git_rev,
        "utc": subprocess.check_output(
            ["date", "-u", "+%Y-%m-%dT%H:%M:%SZ"], text=True).strip(),
        "exit_code": int(os.environ["BENCH_RC"]),
        "wall_seconds": int(os.environ["BENCH_NS"]) / 1e9,
        "output": lines,
    },
    sys.stdout,
    indent=2,
)
PY
  rm -f "$out_file"
  ran=$((ran + 1))
  echo "   -> $out_dir/$out_name (rc=$rc)"
done

if [[ "$ran" -eq 0 ]]; then
  echo "== error: none of the requested benches exist" >&2
  exit 1
fi
echo "== done: $ran result file(s) written to $out_dir"
