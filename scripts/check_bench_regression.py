#!/usr/bin/env python3
"""CI perf-regression gate over BENCH_*.json files.

Compares freshly recorded benchmark results against the committed
baselines in bench-results/ and fails (exit 1) when a benchmark's median
slowdown exceeds the threshold (default: >25%).

Metric extraction per BENCH_<name>.json, most-specific first:
  1. google-benchmark table rows in "output"
       BM_Foo/1    12345 ns    12340 ns    56  -> entry per BM_ name
  2. stable "RESULT <entry> <seconds>" lines emitted by our hand-rolled
     drivers (e.g. bench_trainer_ssp)
  3. fallback: the whole-run "wall_seconds" as a single entry (only when
     it is at least --min-seconds; shorter runs are pure noise)

Per benchmark the gate compares entries present in both files and takes
the MEDIAN ratio fresh/baseline, so a single noisy entry cannot fail the
build. Benchmarks matching an --allow pattern (fnmatch, also matchable
against individual entry names) only warn. Labeled result files
(BENCH_<name>_<label>.json, e.g. the *_scalar-baseline snapshots) are
historical pins, not baselines, and are skipped. Results whose
"sanitizer" field is set (run_benchmarks.sh records AGL_SANITIZE from the
build tree) are likewise skipped on BOTH sides: a TSan/ASan binary runs
5-20x slower, so its timings are meaningless as fresh numbers and
poisonous as baselines. The same goes for results whose "failpoints" field
is set (AGL_FAILPOINTS was armed during the run): they time the
retry/backoff/recovery machinery, not the steady-state path.

To refresh a baseline intentionally (after an accepted perf change):
    OUT_DIR=bench-results scripts/run_benchmarks.sh bench_<name>
and commit the updated JSON alongside the change that explains it.

Usage:
    scripts/check_bench_regression.py --fresh bench-fresh \
        [--baseline bench-results] [--threshold 1.25] [--allow PATTERN]...
"""

import argparse
import fnmatch
import json
import pathlib
import re
import statistics
import sys

# Benchmarks whose headline number measures machine parallelism or is
# otherwise dominated by scheduler noise; they report but never fail.
DEFAULT_ALLOWLIST = [
    "fig8_speedup",   # measures thread-level speedup of the host
]

GBENCH_ROW = re.compile(
    r"^(BM_\S+)\s+([0-9.]+)\s+(ns|us|ms|s)\b")
RESULT_ROW = re.compile(r"^RESULT\s+(\S+)\s+([0-9.eE+-]+)\s*$")
UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def load(path):
    with open(path) as f:
        return json.load(f)


def extract_entries(doc, min_seconds):
    """Returns ({entry_name: seconds}, kind)."""
    entries = {}
    kind = "wall"
    for line in doc.get("output", []):
        m = GBENCH_ROW.match(line.strip())
        if m:
            # Keep the first occurrence (report order: mean before
            # median/stddev rows, which carry _mean/_median suffixes and
            # thus distinct names anyway).
            entries.setdefault(m.group(1),
                              float(m.group(2)) * UNIT_SECONDS[m.group(3)])
            kind = "gbench"
            continue
        m = RESULT_ROW.match(line.strip())
        if m:
            entries.setdefault(m.group(1), float(m.group(2)))
            kind = "result"
    if not entries:
        wall = float(doc.get("wall_seconds", 0.0))
        if wall >= min_seconds:
            entries["wall_seconds"] = wall
    return entries, kind


def is_unusable_baseline(path):
    """Labeled pins (non-null 'label'), sanitizer-built results (non-null
    'sanitizer') and fault-injected runs (non-null 'failpoints') must never
    serve as the comparison baseline."""
    try:
        doc = load(path)
        return (bool(doc.get("label")) or bool(doc.get("sanitizer")) or
                bool(doc.get("failpoints")))
    except (OSError, ValueError):
        return False


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", required=True,
                    help="directory with freshly recorded BENCH_*.json")
    ap.add_argument("--baseline", default="bench-results",
                    help="directory with committed baseline BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="max allowed median fresh/baseline ratio")
    ap.add_argument("--min-seconds", type=float, default=0.05,
                    help="ignore wall-clock-only benches shorter than this")
    ap.add_argument("--allow", action="append", default=[],
                    help="fnmatch pattern (bench or entry name) that only "
                         "warns; repeatable")
    args = ap.parse_args()

    allow = DEFAULT_ALLOWLIST + args.allow

    def allowed(name):
        return any(fnmatch.fnmatch(name, pat) for pat in allow)

    fresh_dir = pathlib.Path(args.fresh)
    base_dir = pathlib.Path(args.baseline)
    fresh_files = sorted(fresh_dir.glob("BENCH_*.json"))
    if not fresh_files:
        print(f"error: no BENCH_*.json under {fresh_dir}", file=sys.stderr)
        return 2

    failures = []
    for fresh_path in fresh_files:
        name = fresh_path.stem.removeprefix("BENCH_")
        fresh = load(fresh_path)
        if fresh.get("label"):
            print(f"-- {name}: labeled snapshot, skipped")
            continue
        if fresh.get("sanitizer"):
            print(f"-- {name}: {fresh['sanitizer']}-sanitized build, "
                  f"skipped (sanitizer timings are not perf data)")
            continue
        if fresh.get("failpoints"):
            print(f"-- {name}: recorded under AGL_FAILPOINTS="
                  f"'{fresh['failpoints']}', skipped (fault-injected "
                  f"timings are not perf data)")
            continue
        # A crashed bench fails regardless of whether it is gated yet.
        if fresh.get("exit_code", 0) != 0:
            msg = f"{name}: fresh run exited {fresh['exit_code']}"
            if allowed(name):
                print(f"!! {msg} (allowlisted, warning only)")
            else:
                failures.append(msg)
            continue
        base_path = base_dir / fresh_path.name
        if not base_path.exists() or is_unusable_baseline(base_path):
            print(f"-- {name}: no committed baseline (new benchmark?) — "
                  f"passing; commit {base_path} to start gating it")
            continue
        base = load(base_path)

        fresh_entries, kind = extract_entries(fresh, args.min_seconds)
        base_entries, _ = extract_entries(base, args.min_seconds)
        shared = sorted(set(fresh_entries) & set(base_entries))
        ratios = []
        worst = None
        for entry in shared:
            if base_entries[entry] <= 0:
                continue
            ratio = fresh_entries[entry] / base_entries[entry]
            if allowed(entry):
                print(f"   {name}/{entry}: x{ratio:.3f} (allowlisted entry)")
                continue
            ratios.append(ratio)
            if worst is None or ratio > worst[1]:
                worst = (entry, ratio)
        if not ratios:
            print(f"-- {name}: no comparable entries, skipped")
            continue
        median = statistics.median(ratios)
        verdict = "OK" if median <= args.threshold else "REGRESSION"
        print(f"{'ok' if verdict == 'OK' else '!!'} {name} [{kind}]: "
              f"median x{median:.3f} over {len(ratios)} entries "
              f"(worst {worst[0]} x{worst[1]:.3f}) -> {verdict}")
        if verdict != "OK":
            msg = (f"{name}: median slowdown x{median:.3f} "
                   f"> x{args.threshold:.2f}")
            if allowed(name):
                print(f"!! {msg} (allowlisted, warning only)")
            else:
                failures.append(msg)

    if failures:
        print("\nperf-regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        print("  (intentional? refresh the baseline: OUT_DIR=bench-results "
              "scripts/run_benchmarks.sh <bench> and commit)",
              file=sys.stderr)
        return 1
    print("\nperf-regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
