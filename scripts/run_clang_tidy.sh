#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the repo's first-party C++.
#
# Usage:
#   scripts/run_clang_tidy.sh [BUILD_DIR] [--changed-only BASE_REF]
#
#   BUILD_DIR              build tree holding compile_commands.json
#                          (default: build; configure with
#                          -DCMAKE_EXPORT_COMPILE_COMMANDS=ON — the
#                          top-level CMakeLists.txt already does).
#   --changed-only BASE    lint only files changed vs BASE (the PR fast
#                          path; CI passes the base sha). Falls back to
#                          the full run if the diff cannot be computed.
#
# Env:
#   CLANG_TIDY             binary override (default: clang-tidy).
#   AGL_TIDY_JOBS          parallelism (default: nproc).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="build"
BASE_REF=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --changed-only)
      BASE_REF="${2:?--changed-only needs a base ref}"
      shift 2
      ;;
    *)
      BUILD_DIR="$1"
      shift
      ;;
  esac
done

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: '$CLANG_TIDY' not found on PATH." >&2
  echo "Install clang-tidy (apt: clang-tidy) or set CLANG_TIDY=..." >&2
  exit 2
fi

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "run_clang_tidy.sh: $BUILD_DIR/compile_commands.json missing." >&2
  echo "Configure first: cmake -B $BUILD_DIR -S ." >&2
  exit 2
fi

# First-party translation units only; headers are pulled in through
# HeaderFilterRegex in .clang-tidy.
mapfile -t FILES < <(git ls-files 'src/**/*.cc' 'tests/*.cpp' \
                                  'bench/*.cc' 'examples/*.cc')

if [[ -n "$BASE_REF" ]]; then
  # Diff-aware fast path: a PR leg lints only what it touched. A header
  # change still lints every changed TU; the full wall runs on main.
  if CHANGED=$(git diff --name-only "$BASE_REF"...HEAD 2>/dev/null); then
    # A changed header can break any TU that includes it — keep the TU
    # list restricted to changed .cc/.cpp, but if ONLY headers changed,
    # fall back to the full run rather than silently linting nothing.
    mapfile -t CHANGED_TUS < <(printf '%s\n' "$CHANGED" |
                               grep -E '\.(cc|cpp)$' || true)
    if [[ ${#CHANGED_TUS[@]} -gt 0 ]]; then
      mapfile -t FILES < <(printf '%s\n' "${FILES[@]}" |
                           grep -Fx -f <(printf '%s\n' "${CHANGED_TUS[@]}") \
                           || true)
      echo "clang-tidy: changed-only vs $BASE_REF (${#FILES[@]} TUs)"
    elif [[ -n "$(printf '%s\n' "$CHANGED" | grep -E '\.h$' || true)" ]]; then
      echo "clang-tidy: only headers changed vs $BASE_REF; full run"
    else
      echo "clang-tidy: no C++ changes vs $BASE_REF; nothing to lint"
      exit 0
    fi
  else
    echo "clang-tidy: cannot diff vs $BASE_REF; falling back to full run" >&2
  fi
fi

if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "clang-tidy: no files to lint"
  exit 0
fi

JOBS="${AGL_TIDY_JOBS:-$(nproc)}"
echo "clang-tidy: linting ${#FILES[@]} files with $JOBS jobs"

# xargs fan-out; clang-tidy exits nonzero on any WarningsAsErrors hit.
printf '%s\0' "${FILES[@]}" |
  xargs -0 -n 4 -P "$JOBS" "$CLANG_TIDY" -p "$BUILD_DIR" --quiet

echo "clang-tidy: clean"
